//! The Itty Bitty Stack Machine, end to end.
//!
//! A re-derivation of the thesis's Appendix D machine (the OCR'd original
//! is incomplete; see `DESIGN.md`): a 16-opcode stack ISA with a 13-bit
//! operand field and memory-mapped output, implemented twice —
//!
//! * [`iss`]: an instruction-set simulator (the ISP level of §2.2.4), the
//!   independent oracle;
//! * [`rtl`]: a micro-coded register-transfer implementation built from the
//!   [`ucode`] control ROM, expressed in the ASIM II language.
//!
//! [`asm`] assembles the workloads in [`programs`] (sieve, Fibonacci,
//! GCD). The Figure 5.1 experiment runs [`programs::sieve`] on the RTL
//! model under every engine.

pub mod asm;
pub mod isa;
pub mod iss;
pub mod programs;
pub mod rtl;
pub mod ucode;

pub use asm::{assemble, AsmError};
pub use isa::{Instr, Op};
pub use iss::{Iss, OutputEvent, Stop};

use rtl_core::Word;

/// Everything needed to run the sieve experiment: the assembled program,
/// the exact RTL cycle count, and the expected output text.
#[derive(Debug, Clone)]
pub struct SieveWorkload {
    /// The assembled program.
    pub program: Vec<Instr>,
    /// Micro-cycles the RTL model needs to finish (from the ISS).
    pub cycles: Word,
    /// The primes the run prints.
    pub primes: Vec<Word>,
    /// The exact output text (`soutput` rendering).
    pub expected_output: String,
}

/// Assembles and characterizes the sieve for a given size.
///
/// ```
/// let w = rtl_machines::stack::sieve_workload(20);
/// assert_eq!(w.primes.first(), Some(&3));
/// assert!(w.cycles > 1000);
/// ```
pub fn sieve_workload(size: Word) -> SieveWorkload {
    let program = assemble(&programs::sieve(size)).expect("sieve assembles");
    let mut iss = Iss::new(program.clone());
    assert_eq!(iss.run(50_000_000), Stop::Halted, "sieve halts");
    SieveWorkload {
        program,
        cycles: iss.predicted_cycles as Word,
        primes: iss.output_values(),
        expected_output: iss.rendered_output(),
    }
}

/// A characterized stack-machine workload: assembled program, the exact
/// RTL cycle count to completion (from the ISS oracle), and the values
/// the run prints. The general shape behind [`SieveWorkload`], used for
/// the other [`programs`].
#[derive(Debug, Clone)]
pub struct Workload {
    /// The assembled program.
    pub program: Vec<Instr>,
    /// Micro-cycles the RTL model needs to finish (from the ISS).
    pub cycles: Word,
    /// The values the run writes to the output device, in order.
    pub outputs: Vec<Word>,
    /// The exact output text (`soutput` rendering).
    pub expected_output: String,
}

fn characterize(source: &str, what: &str) -> Workload {
    let program = assemble(source).unwrap_or_else(|e| panic!("{what} assembles: {e}"));
    let mut iss = Iss::new(program.clone());
    assert_eq!(iss.run(50_000_000), Stop::Halted, "{what} halts");
    Workload {
        program,
        cycles: iss.predicted_cycles as Word,
        outputs: iss.output_values(),
        expected_output: iss.rendered_output(),
    }
}

/// Assembles and characterizes [`programs::fibonacci`] for `n` terms.
///
/// ```
/// let w = rtl_machines::stack::fib_workload(10);
/// assert_eq!(w.outputs.last(), Some(&55));
/// ```
pub fn fib_workload(n: Word) -> Workload {
    characterize(&programs::fibonacci(n), "fibonacci")
}

/// Assembles and characterizes [`programs::gcd`] (subtraction method).
///
/// ```
/// let w = rtl_machines::stack::gcd_workload(252, 105);
/// assert_eq!(w.outputs, [21]);
/// ```
pub fn gcd_workload(a: Word, b: Word) -> Workload {
    characterize(&programs::gcd(a, b), "gcd")
}

/// Assembles and characterizes [`programs::bubble_sort`] over `values` —
/// the load/store/swap stress workload (every addressing form, nested
/// loops). The ISS oracle supplies the exact cycle count and the sorted
/// output sequence.
///
/// ```
/// let w = rtl_machines::stack::sort_workload(&[5, 3, 8, 1]);
/// assert_eq!(w.outputs, [1, 3, 5, 8]);
/// ```
pub fn sort_workload(values: &[Word]) -> Workload {
    let w = characterize(&programs::bubble_sort(values), "bubble sort");
    debug_assert_eq!(w.outputs, programs::bubble_sort_expected(values));
    w
}
