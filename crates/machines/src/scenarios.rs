//! The built-in scenario corpus: every reference design in this crate,
//! registered under a stable name with a suggested cycle horizon and
//! stimulus, so the co-simulation harness (and anything else that wants
//! "all the machines we trust") can enumerate them.
//!
//! A scenario is self-contained: specification *text* (not a parsed
//! `Spec`), cycle budget, and scripted input words. Text keeps the
//! registry engine-agnostic — external tools can replay a scenario against
//! a generated simulator binary byte-for-byte.

use crate::synth;
use rtl_core::{Design, LoadError, Word};

/// A named, replayable simulation workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Stable registry name (`classic/counter`, `stack/sieve`, ...).
    pub name: String,
    /// The full specification source text.
    pub source: String,
    /// Cycle horizon the scenario is known to run cleanly for (no runtime
    /// errors, no input exhaustion).
    pub cycles: u64,
    /// Scripted input words consumed by memory-mapped input, if any.
    pub input: Vec<Word>,
}

impl Scenario {
    fn new(name: &str, source: impl Into<String>, cycles: u64) -> Self {
        Scenario {
            name: name.to_string(),
            source: source.into(),
            cycles,
            input: Vec::new(),
        }
    }

    /// Parses and elaborates the scenario's specification.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration errors — impossible for the built-in
    /// corpus (covered by tests), possible for user-constructed scenarios.
    pub fn design(&self) -> Result<Design, LoadError> {
        Design::from_source(&self.source)
    }

    /// Re-targets the scenario to a different cycle horizon. When the
    /// horizon grows, the stimulus script is extended by cycling the
    /// original pattern at the original words-per-cycle rate, so
    /// input-driven scenarios stay exhaustion-free at any length.
    pub fn with_cycles(mut self, cycles: u64) -> Self {
        if !self.input.is_empty() && cycles > self.cycles && self.cycles > 0 {
            let rate = self.input.len().div_ceil(self.cycles as usize);
            let needed = (cycles as usize + 1) * rate;
            let pattern = self.input.clone();
            self.input = pattern.into_iter().cycle().take(needed).collect();
        }
        self.cycles = cycles;
        self
    }
}

/// The default lockstep horizon: long enough to exercise wrap-around and
/// steady-state behavior on every bundled machine.
pub const DEFAULT_CYCLES: u64 = 1024;

/// The full built-in corpus, in stable order. Construction (which
/// includes assembling and ISS-simulating the sieve workload) runs once
/// per process; lookups clone from the cached corpus.
pub fn corpus() -> Vec<Scenario> {
    cached().to_vec()
}

fn cached() -> &'static [Scenario] {
    static CORPUS: std::sync::OnceLock<Vec<Scenario>> = std::sync::OnceLock::new();
    CORPUS.get_or_init(build)
}

fn build() -> Vec<Scenario> {
    let mut scenarios = Vec::new();

    // The classic bundled specifications run clean at any horizon: they
    // are closed loops with masked addresses and in-range selectors.
    for (name, src) in crate::classic::ALL {
        scenarios.push(Scenario::new(
            &format!("classic/{name}"),
            *src,
            DEFAULT_CYCLES,
        ));
    }

    // The Figure 5.1 machine: the sieve program on the Itty Bitty Stack
    // Machine, run for its natural workload length.
    let sieve = crate::stack::sieve_workload(20);
    scenarios.push(Scenario::new(
        "stack/sieve",
        crate::stack::rtl::spec_source(&sieve.program, Some(sieve.cycles)),
        sieve.cycles as u64 + 1,
    ));

    // The other stack workloads, sized so each clears the >= 1000-cycle
    // lockstep horizon: 20 Fibonacci terms and a slow subtraction GCD.
    let fib = crate::stack::fib_workload(20);
    scenarios.push(Scenario::new(
        "stack/fib",
        crate::stack::rtl::spec_source(&fib.program, Some(fib.cycles)),
        fib.cycles as u64 + 1,
    ));
    let gcd = crate::stack::gcd_workload(1000, 45);
    scenarios.push(Scenario::new(
        "stack/gcd",
        crate::stack::rtl::spec_source(&gcd.program, Some(gcd.cycles)),
        gcd.cycles as u64 + 1,
    ));

    // Bubble sort over a worst-case (descending) dozen: the load/store/
    // swap stress program, every addressing form and nested loops.
    let sort = crate::stack::sort_workload(&[11, 7, 12, 3, 9, 1, 10, 5, 8, 2, 6, 4]);
    scenarios.push(Scenario::new(
        "stack/sort",
        crate::stack::rtl::spec_source(&sort.program, Some(sort.cycles)),
        sort.cycles as u64 + 1,
    ));

    // The Appendix F tiny computer dividing 997 by 3: a long-running
    // microcoded workload that ends in a clean halt spin.
    let image = crate::tiny::divider_image(997, 3);
    scenarios.push(Scenario::new(
        "tiny/divider",
        crate::tiny::rtl::spec_source(&image, Some(2000)),
        2000,
    ));

    // Synthetic stress: a wide dependency chain and seeded random designs
    // (valid by construction, so engines must agree at any horizon).
    scenarios.push(Scenario::new(
        "synth/chain-64",
        rtl_lang::pretty(&synth::chain(64)),
        DEFAULT_CYCLES,
    ));
    for seed in [1u64, 2, 3] {
        scenarios.push(Scenario::new(
            &format!("synth/random-{seed}"),
            rtl_lang::pretty(&synth::random_spec(seed, 40)),
            DEFAULT_CYCLES,
        ));
    }

    // Memory-mapped input: an accumulator fed one word per cycle, so the
    // input path of every engine is exercised too.
    let cycles = DEFAULT_CYCLES;
    let mut io = Scenario::new(
        "io/accumulator",
        "# scripted input accumulator\n\
         i* acc* o n .\n\
         M i 1 0 2 1\n\
         M acc 0 n 1 1\n\
         A n 4 acc i\n\
         M o 1 acc 3 1 .",
        cycles,
    );
    io.input = (0..cycles as Word).map(|v| v % 97).collect();
    scenarios.push(io);

    // Interactive input: a prompt/response loop. Reading from an address
    // other than 0/1 makes every engine print the Appendix A prompt
    // (`Input from address 2: `) before reading an integer, and the
    // output device echoes the latched answer back — so the corpus
    // exercises the interactive-input path (the one `asim2 run
    // --interactive` and `Session::stimulus_mut` drive) in lockstep too.
    let mut echo = Scenario::new(
        "io/echo",
        "# interactive echo: prompted input each cycle, integer echo out\n\
         i* o* .\n\
         M i 2 0 2 1\n\
         M o 1 i 3 1 .",
        cycles,
    );
    echo.input = (0..cycles as Word).map(|v| (v * 7 + 3) % 1000).collect();
    scenarios.push(echo);

    // A command loop: every cycle reads an opcode and an operand from two
    // prompting input devices (addresses 2 and 3), dispatches through a
    // selector — add, subtract, or print the accumulator — and latches
    // the result. Two interleaved prompt reads per cycle exercise the
    // interactive-input path well beyond io/echo's single stream: input
    // ordering across devices, selector dispatch over an input value, and
    // an output device gated by the opcode.
    let mut cmdloop = Scenario::new(
        "io/cmdloop",
        "# command loop: op + operand per prompt, dispatch add/sub/print\n\
         op* val* acc* shown* sum dif res o .\n\
         M op 2 0 2 1\n\
         M val 3 0 2 1\n\
         M acc 0 res 1 1\n\
         A sum 4 acc val\n\
         A dif 5 acc val\n\
         S res op.0.1 sum dif acc acc\n\
         S shown op.0.1 0 0 acc 0\n\
         M o 1 shown 3 1 .",
        cycles,
    );
    // Two words per cycle: opcode 0 (add), 1 (sub), 2 (print), then the
    // operand. The mix keeps the accumulator moving through negatives and
    // back — wrapping arithmetic, never a runtime error.
    cmdloop.input = (0..cycles as Word)
        .flat_map(|cycle| [cycle % 3, (cycle * 13 + 5) % 200])
        .collect();
    scenarios.push(cmdloop);

    scenarios
}

/// Looks a scenario up by registry name.
pub fn by_name(name: &str) -> Option<Scenario> {
    cached().iter().find(|s| s.name == name).cloned()
}

/// All registry names, in corpus order.
pub fn names() -> Vec<String> {
    cached().iter().map(|s| s.name.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_named_uniquely() {
        let names = names();
        assert!(names.len() >= 16, "{names:?}");
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
    }

    #[test]
    fn every_scenario_elaborates() {
        for s in corpus() {
            let d = s.design().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(d.len() >= 2, "{} has too few components", s.name);
            assert!(
                s.cycles >= 1000,
                "{} horizon too short for lockstep",
                s.name
            );
        }
    }

    #[test]
    fn with_cycles_extends_stimulus() {
        let io = by_name("io/accumulator").unwrap();
        let rate = io.input.len().div_ceil(io.cycles as usize);
        let longer = io.clone().with_cycles(5000);
        assert_eq!(longer.cycles, 5000);
        assert!(
            longer.input.len() >= 5000 * rate,
            "stimulus must cover the new horizon"
        );
        assert_eq!(
            &longer.input[..io.input.len()],
            &io.input[..],
            "prefix preserved"
        );
        // Shrinking keeps the stimulus as-is (more input than needed is fine).
        let shorter = io.clone().with_cycles(10);
        assert_eq!(shorter.cycles, 10);
        assert_eq!(shorter.input, io.input);
        // Closed scenarios are untouched.
        let counter = by_name("classic/counter").unwrap().with_cycles(9999);
        assert!(counter.input.is_empty());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("classic/counter").is_some());
        assert!(by_name("stack/sieve").is_some());
        assert!(by_name("no/such").is_none());
    }

    #[test]
    fn registry_holds_nineteen_scenarios_including_the_stack_programs() {
        assert_eq!(names().len(), 19, "{:?}", names());
        let fib = by_name("stack/fib").expect("fib registered");
        let gcd = by_name("stack/gcd").expect("gcd registered");
        let sort = by_name("stack/sort").expect("sort registered");
        for s in [&fib, &gcd, &sort] {
            assert!(s.cycles >= 1000, "{} horizon {}", s.name, s.cycles);
            assert!(s.input.is_empty(), "stack programs take no input");
            s.design().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn echo_scenario_prompts_and_echoes_under_reader_input() {
        // The interactive-input scenario driven the way the CLI does it:
        // one Session, a ReaderInput parsing prompt answers from text,
        // and the harness peeling a word off the *same* stimulus first
        // (Session::stimulus_mut — prompt answers and memory-mapped input
        // share one source).
        let scenario = by_name("io/echo").unwrap();
        let design = scenario.design().unwrap();
        let text = "9\n1\n2\n3\n4\n5\n";
        let mut session = rtl_core::Session::over(rtl_interp::Interpreter::new(&design))
            .capture()
            .stimulus(rtl_core::ReaderInput::new(text.as_bytes()))
            .build();
        let budget = session.stimulus_mut().read_int().unwrap();
        assert_eq!(budget, 9, "the driver reads its own answer first");
        let outcome = session.run(rtl_core::Until::Cycles(4));
        assert!(outcome.completed(), "{:?}", outcome.stop);
        let out = session.output_text();
        assert!(out.contains("Input from address 2: "), "{out}");
        // The output device echoes the latched answer one cycle later.
        assert!(out.contains("o= 1"), "{out}");
    }

    #[test]
    fn echo_scenario_stimulus_covers_any_horizon() {
        let echo = by_name("io/echo").unwrap();
        assert!(echo.cycles >= 1000, "lockstep horizon");
        assert_eq!(echo.input.len() as u64, echo.cycles, "one word per cycle");
        let longer = echo.with_cycles(4000);
        assert!(longer.input.len() >= 4000);
    }

    #[test]
    fn cmdloop_scenario_dispatches_add_sub_print() {
        // Drive the command loop by hand and check the dispatch: with the
        // scripted pattern, cycle 0 adds 5, cycle 1 subtracts 18, cycle 2
        // prints — the output device shows the accumulator only on print
        // cycles (opcode 2) and 0 otherwise.
        let scenario = by_name("io/cmdloop").unwrap();
        assert!(scenario.cycles >= 1000, "lockstep horizon");
        assert_eq!(
            scenario.input.len() as u64,
            2 * scenario.cycles,
            "op + operand per cycle"
        );
        let design = scenario.design().unwrap();
        let mut session = rtl_core::Session::over(rtl_interp::Interpreter::new(&design))
            .capture()
            .scripted(scenario.input.iter().copied())
            .build();
        let outcome = session.run(rtl_core::Until::Cycles(6));
        assert!(outcome.completed(), "{:?}", outcome.stop);
        let acc = design.find("acc").unwrap();
        // add 5, sub 18, print, add 44, sub 57, print: 5-18+44-57 = -26.
        assert_eq!(session.state().cells(acc)[0], -26);
        let out = session.output_text();
        assert!(out.contains("Input from address 2: "), "{out}");
        assert!(out.contains("Input from address 3: "), "{out}");
        // The print op (cycle 2) routes acc = 5 - 18 = -13 to the output
        // device, latched visible the following cycle.
        assert!(out.contains("shown= -13"), "{out}");
    }

    #[test]
    fn sort_scenario_is_iss_characterized() {
        // The registered horizon is the ISS-predicted cycle count + 1, and
        // the ISS oracle's outputs are the sorted input.
        let w = crate::stack::sort_workload(&[11, 7, 12, 3, 9, 1, 10, 5, 8, 2, 6, 4]);
        assert_eq!(w.outputs, (1..=12).collect::<Vec<_>>());
        let s = by_name("stack/sort").unwrap();
        assert_eq!(s.cycles, w.cycles as u64 + 1);
        assert_eq!(
            w.expected_output, "1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n11\n12\n",
            "integer-device rendering of the sorted values"
        );
    }
}
