//! A programmatic builder for ASIM II specifications.
//!
//! The reference machines in this crate (the stack machine's 128-word
//! microcode ROM in particular) are far easier to author as Rust code than
//! as hand-written specification text. [`SpecBuilder`] assembles an
//! [`rtl_lang::Spec`] directly; [`SpecBuilder::source`] renders canonical
//! text via the pretty-printer, and the round-trip property (`parse ∘
//! pretty = id`) is covered by tests.

use rtl_lang::{
    parse_expr, Alu, Component, ComponentKind, Declared, Expr, Ident, Memory, Selector, Span, Spec,
    Word,
};

/// Builds a [`Spec`] incrementally.
///
/// Expression arguments are written in the specification language itself
/// (e.g. `"rom.3.4"`, `"%110,ir.0"`, `"4096"`), which keeps machine
/// definitions readable next to the thesis.
///
/// # Panics
///
/// Builder methods panic on malformed expression text or invalid names —
/// they are developer-facing constructors, like `Regex::new(...).unwrap()`
/// at start-up. Errors in the *assembled* spec (unknown references,
/// circular dependencies) surface through `Design::elaborate` as usual.
///
/// ```
/// use rtl_machines::builder::SpecBuilder;
/// let mut b = SpecBuilder::new("up counter");
/// b.cycles(8);
/// b.trace("count");
/// b.memory("count", "0", "next", "1", 1);
/// b.alu("next", "4", "count", "1");
/// let spec = b.build();
/// assert!(rtl_core::Design::elaborate(&spec).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpecBuilder {
    title: String,
    cycles: Option<Word>,
    traced: Vec<String>,
    components: Vec<Component>,
}

impl SpecBuilder {
    /// Starts a specification with a title (the `#` comment line).
    pub fn new(title: impl Into<String>) -> Self {
        SpecBuilder {
            title: format!("# {}", title.into()),
            ..Self::default()
        }
    }

    /// Sets the `= n` cycle count.
    pub fn cycles(&mut self, n: Word) -> &mut Self {
        self.cycles = Some(n);
        self
    }

    /// Marks a component for per-cycle tracing (the `*` suffix).
    pub fn trace(&mut self, name: &str) -> &mut Self {
        self.traced.push(name.to_string());
        self
    }

    /// Adds `A name funct left right`.
    pub fn alu(&mut self, name: &str, funct: &str, left: &str, right: &str) -> &mut Self {
        let kind = ComponentKind::Alu(Alu {
            funct: expr(funct),
            left: expr(left),
            right: expr(right),
        });
        self.push(name, kind)
    }

    /// Adds `S name select case0 case1 ...`.
    pub fn selector<S: AsRef<str>>(
        &mut self,
        name: &str,
        select: &str,
        cases: impl IntoIterator<Item = S>,
    ) -> &mut Self {
        let cases: Vec<Expr> = cases.into_iter().map(|c| expr(c.as_ref())).collect();
        assert!(!cases.is_empty(), "selector {name} needs at least one case");
        let kind = ComponentKind::Selector(Selector {
            select: expr(select),
            cases,
        });
        self.push(name, kind)
    }

    /// Adds `M name addr data opn size` (zero-initialized).
    pub fn memory(
        &mut self,
        name: &str,
        addr: &str,
        data: &str,
        opn: &str,
        size: u32,
    ) -> &mut Self {
        assert!(size >= 1, "memory {name} needs at least one cell");
        let kind = ComponentKind::Memory(Memory {
            addr: expr(addr),
            data: expr(data),
            opn: expr(opn),
            size,
            init: None,
        });
        self.push(name, kind)
    }

    /// Adds `M name addr data opn -n v0 ... vn-1` (initialized memory).
    pub fn memory_init(
        &mut self,
        name: &str,
        addr: &str,
        data: &str,
        opn: &str,
        init: Vec<Word>,
    ) -> &mut Self {
        assert!(!init.is_empty(), "memory {name} needs at least one cell");
        let size = init.len() as u32;
        let kind = ComponentKind::Memory(Memory {
            addr: expr(addr),
            data: expr(data),
            opn: expr(opn),
            size,
            init: Some(init),
        });
        self.push(name, kind)
    }

    fn push(&mut self, name: &str, kind: ComponentKind) -> &mut Self {
        let ident = Ident::parse(name).unwrap_or_else(|| panic!("invalid component name {name:?}"));
        assert!(
            !self.components.iter().any(|c| c.name == *name),
            "component {name} defined twice"
        );
        self.components.push(Component {
            name: ident,
            kind,
            span: Span::default(),
        });
        self
    }

    /// Finishes the specification. Every component is declared in the name
    /// list (in definition order), with `*` markers from [`SpecBuilder::trace`].
    pub fn build(&self) -> Spec {
        let declared = self
            .components
            .iter()
            .map(|c| Declared {
                name: c.name.clone(),
                traced: self.traced.iter().any(|t| c.name == t.as_str()),
                span: Span::default(),
            })
            .collect();
        Spec {
            title: self.title.clone(),
            cycles: self.cycles,
            declared,
            components: self.components.clone(),
        }
    }

    /// Renders the specification as canonical source text.
    pub fn source(&self) -> String {
        rtl_lang::pretty(&self.build())
    }
}

fn expr(text: &str) -> Expr {
    parse_expr(text, Span::default())
        .unwrap_or_else(|e| panic!("bad builder expression {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::Design;

    #[test]
    fn builder_output_round_trips_through_text() {
        let mut b = SpecBuilder::new("round trip");
        b.cycles(4);
        b.trace("count");
        b.memory("count", "0", "next", "1", 1);
        b.alu("next", "4", "count", "1");
        b.selector("mux", "count.0", ["next", "0"]);
        b.memory_init("rom", "count.0.1", "0", "0", vec![1, 2, 3, 4]);

        let text = b.source();
        let spec = rtl_lang::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(rtl_lang::pretty(&spec), text);
        let design = Design::elaborate(&spec).unwrap();
        assert_eq!(design.len(), 4);
        assert!(design.warnings().is_empty(), "builder declares everything");
    }

    #[test]
    #[should_panic(expected = "bad builder expression")]
    fn malformed_expression_panics() {
        SpecBuilder::new("x").alu("a", "4", "1+", "2");
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_name_panics() {
        SpecBuilder::new("x")
            .alu("a", "4", "1", "2")
            .alu("a", "4", "1", "2");
    }

    #[test]
    fn traced_components_carry_stars() {
        let mut b = SpecBuilder::new("t");
        b.trace("r");
        b.memory("r", "0", "0", "0", 1);
        assert!(b.source().contains("r* ."), "{}", b.source());
    }
}
