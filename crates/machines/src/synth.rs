//! Synthetic specifications: sized chains for the scaling benchmarks and
//! seeded random designs for differential property tests.

use crate::builder::SpecBuilder;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtl_lang::Spec;

/// A dependency chain of `n` ALUs hanging off one counter register —
/// every component must be evaluated every cycle, so simulation time
/// scales linearly with `n`. Used by the A3 scaling benchmark (the §5.2
/// claim that interpretation is "too slow for large projects").
pub fn chain(n: usize) -> Spec {
    assert!(n >= 1);
    let mut b = SpecBuilder::new(format!("synthetic chain of {n} alus"));
    b.trace("c");
    b.memory("c", "0", "next", "1", 1);
    b.alu("next", "4", "c.0.7", "1");
    b.alu("a0", "4", "c.0.7", "1");
    for i in 1..n {
        // Alternate add and xor to defeat trivial folding.
        let f = if i % 2 == 0 { "4" } else { "10" };
        b.alu(&format!("a{i}"), f, &format!("a{}.0.15", i - 1), "3");
    }
    b.build()
}

/// A seeded random-but-valid design: one counter driver, a few memories
/// with masked addresses, and layers of ALUs/selectors with in-range
/// constant functions and masked selector indices. Such designs cannot
/// fail at runtime, so the engines must agree on every cycle — the
/// property-test oracle.
pub fn random_spec(seed: u64, size: usize) -> Spec {
    let mut rng = StdRng::seed_from_u64(seed);
    let size = size.clamp(1, 200);
    let mut b = SpecBuilder::new(format!("random design seed {seed} size {size}"));

    // Driver.
    b.trace("c");
    b.memory("c", "0", "next", "1", 1);
    b.alu("next", "4", "c.0.11", "1");
    let mut sources: Vec<String> = vec!["c".into()];

    // A few memories (ROM-like and register-like).
    let mem_count = rng.random_range(1..=3usize);
    for m in 0..mem_count {
        let name = format!("m{m}");
        let bits = rng.random_range(1..=4u8);
        let cells = 1u32 << bits;
        let addr = format!("c.0.{}", bits - 1);
        let (data, opn) = match rng.random_range(0..3) {
            0 => ("0".to_string(), "0".to_string()), // ROM of zeros? give init
            1 => (pick_expr(&mut rng, &sources), "1".to_string()), // register file write
            _ => (pick_expr(&mut rng, &sources), "c.0".to_string()), // dynamic rd/wr
        };
        if opn == "0" {
            let init: Vec<i64> = (0..cells).map(|_| rng.random_range(0..1000)).collect();
            b.memory_init(&name, &addr, &data, &opn, init);
        } else {
            b.memory(&name, &addr, &data, &opn, cells);
        }
        b.trace(&name);
        sources.push(name);
    }

    // Combinational layers.
    for i in 0..size {
        let name = format!("x{i}");
        if rng.random_range(0..4) == 0 {
            // Selector with a masked index.
            let bits = rng.random_range(1..=3u32);
            let cases: Vec<String> = (0..(1 << bits))
                .map(|_| pick_expr(&mut rng, &sources))
                .collect();
            let sel = format!("{}.0.{}", pick_source(&mut rng, &sources), bits - 1);
            b.selector(&name, &sel, cases);
        } else {
            // ALU with a constant, in-range function.
            let f = rng.random_range(0..=13i64).to_string();
            let left = pick_expr(&mut rng, &sources);
            let right = pick_expr(&mut rng, &sources);
            b.alu(&name, &f, &left, &right);
        }
        if rng.random_range(0..3) == 0 {
            b.trace(&name);
        }
        sources.push(name);
    }
    b.build()
}

fn pick_source(rng: &mut StdRng, sources: &[String]) -> String {
    sources[rng.random_range(0..sources.len())].clone()
}

fn pick_expr(rng: &mut StdRng, sources: &[String]) -> String {
    let parts = rng.random_range(1..=3usize);
    let mut out = Vec::with_capacity(parts);
    for i in 0..parts {
        // Only the leftmost part may be full width; everything to its
        // right must be sized or the concatenation overflows 31 bits.
        let sized = i > 0 || rng.random_range(0..2) == 0;
        if rng.random_range(0..3) == 0 {
            // Constant part.
            let v = rng.random_range(0..16i64);
            if sized {
                out.push(format!("{v}.4"));
            } else {
                out.push(v.to_string());
            }
        } else {
            let s = pick_source(rng, sources);
            if sized {
                let from = rng.random_range(0..4u8);
                let to = from + rng.random_range(0..4u8);
                out.push(format!("{s}.{from}.{to}"));
            } else {
                out.push(s);
            }
        }
    }
    out.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::Design;

    #[test]
    fn chains_elaborate_at_every_size() {
        for n in [1, 2, 16, 128] {
            let d = Design::elaborate(&chain(n)).unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(d.comb_order().len(), n + 1);
        }
    }

    #[test]
    fn random_specs_elaborate_for_many_seeds() {
        for seed in 0..50 {
            let spec = random_spec(seed, 20);
            Design::elaborate(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn random_specs_are_deterministic() {
        let a = rtl_lang::pretty(&random_spec(7, 30));
        let b = rtl_lang::pretty(&random_spec(7, 30));
        assert_eq!(a, b);
    }

    #[test]
    fn random_specs_differ_across_seeds() {
        let a = rtl_lang::pretty(&random_spec(1, 30));
        let b = rtl_lang::pretty(&random_spec(2, 30));
        assert_ne!(a, b);
    }
}
