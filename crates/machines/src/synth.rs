//! Synthetic specifications: sized chains for the scaling benchmarks and
//! seeded random designs for differential property tests.

use crate::builder::SpecBuilder;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtl_core::width::bits_needed;
use rtl_lang::Spec;

/// Bound marker for a source whose value is not provably narrow.
const UNBOUNDED: u8 = 31;

/// A dependency chain of `n` ALUs hanging off one counter register —
/// every component must be evaluated every cycle, so simulation time
/// scales linearly with `n`. Used by the A3 scaling benchmark (the §5.2
/// claim that interpretation is "too slow for large projects").
pub fn chain(n: usize) -> Spec {
    assert!(n >= 1);
    let mut b = SpecBuilder::new(format!("synthetic chain of {n} alus"));
    b.trace("c");
    b.memory("c", "0", "next", "1", 1);
    b.alu("next", "4", "c.0.7", "1");
    b.alu("a0", "4", "c.0.7", "1");
    for i in 1..n {
        // Alternate add and xor to defeat trivial folding.
        let f = if i % 2 == 0 { "4" } else { "10" };
        b.alu(&format!("a{i}"), f, &format!("a{}.0.15", i - 1), "3");
    }
    b.build()
}

/// A seeded random-but-valid design: one counter driver, a few memories
/// with masked addresses, and layers of ALUs/selectors with in-range
/// constant functions and masked selector indices. Such designs cannot
/// fail at runtime, so the engines must agree on every cycle — the
/// property-test oracle. Each source carries the same provable value
/// bound `rtl-lint` derives, and subfield reads are clamped below it, so
/// generated designs also lint clean (no `field-oob` on a comparator
/// output, for example).
pub fn random_spec(seed: u64, size: usize) -> Spec {
    let mut rng = StdRng::seed_from_u64(seed);
    let size = size.clamp(1, 200);
    let mut b = SpecBuilder::new(format!("random design seed {seed} size {size}"));

    // Driver.
    b.trace("c");
    b.memory("c", "0", "next", "1", 1);
    b.alu("next", "4", "c.0.11", "1");
    let mut sources: Vec<(String, u8)> = vec![("c".into(), UNBOUNDED)];

    // A few memories (ROM-like and register-like).
    let mem_count = rng.random_range(1..=3usize);
    for m in 0..mem_count {
        let name = format!("m{m}");
        let bits = rng.random_range(1..=4u8);
        let cells = 1u32 << bits;
        let addr = format!("c.0.{}", bits - 1);
        let (data, opn) = match rng.random_range(0..3) {
            0 => ("0".to_string(), "0".to_string()), // ROM of zeros? give init
            1 => (pick_expr(&mut rng, &sources).0, "1".to_string()), // register file write
            _ => (pick_expr(&mut rng, &sources).0, "c.0".to_string()), // dynamic rd/wr
        };
        let bound = if opn == "0" {
            let init: Vec<i64> = (0..cells).map(|_| rng.random_range(0..1000)).collect();
            // A ROM's latch only ever holds an init value.
            let bound = init.iter().copied().map(bits_needed).max().unwrap_or(1);
            b.memory_init(&name, &addr, &data, &opn, init);
            bound.max(1)
        } else {
            b.memory(&name, &addr, &data, &opn, cells);
            UNBOUNDED
        };
        b.trace(&name);
        sources.push((name, bound));
    }

    // Combinational layers.
    for i in 0..size {
        let name = format!("x{i}");
        let bound = if rng.random_range(0..4) == 0 {
            // Selector with a masked index.
            let bits = rng.random_range(1..=3u32);
            let cases: Vec<(String, u8)> = (0..(1 << bits))
                .map(|_| pick_expr(&mut rng, &sources))
                .collect();
            let sel = format!("{}.0.{}", pick_source(&mut rng, &sources), bits - 1);
            let bound = cases.iter().map(|(_, b)| *b).max().unwrap_or(UNBOUNDED);
            b.selector(&name, &sel, cases.into_iter().map(|(text, _)| text));
            bound
        } else {
            // ALU with a constant, in-range function.
            let f = rng.random_range(0..=13i64);
            let left = pick_expr(&mut rng, &sources).0;
            let right = pick_expr(&mut rng, &sources).0;
            b.alu(&name, &f.to_string(), &left, &right);
            // zero (0), unused (11), eq (12) and lt (13) are 1-bit.
            if matches!(f, 0 | 11 | 12 | 13) {
                1
            } else {
                UNBOUNDED
            }
        };
        if rng.random_range(0..3) == 0 {
            b.trace(&name);
        }
        sources.push((name, bound));
    }
    b.build()
}

fn pick_source(rng: &mut StdRng, sources: &[(String, u8)]) -> String {
    sources[rng.random_range(0..sources.len())].0.clone()
}

/// A random expression over `sources`, plus the provable bound `rtl-lint`
/// assigns it (UNBOUNDED when none): `bits_needed` of the folded value
/// for all-constant expressions, otherwise the sum of part widths with
/// the leftmost part allowed to be unsized.
fn pick_expr(rng: &mut StdRng, sources: &[(String, u8)]) -> (String, u8) {
    let parts = rng.random_range(1..=3usize);
    let mut out = Vec::with_capacity(parts);
    // (value, width) of each part while all are constant; the fold
    // mirrors the resolver (and the lint's `const_value`).
    let mut consts: Option<Vec<(i64, Option<u8>)>> = Some(Vec::new());
    let mut total: u32 = 0;
    for i in 0..parts {
        // Only the leftmost part may be full width; everything to its
        // right must be sized or the concatenation overflows 31 bits.
        let sized = i > 0 || rng.random_range(0..2) == 0;
        if rng.random_range(0..3) == 0 {
            // Constant part.
            let v = rng.random_range(0..16i64);
            if sized {
                out.push(format!("{v}.4"));
                total += 4;
            } else {
                out.push(v.to_string());
                total += u32::from(bits_needed(v));
            }
            if let Some(c) = &mut consts {
                c.push((v, sized.then_some(4)));
            }
        } else {
            consts = None;
            let idx = rng.random_range(0..sources.len());
            let (s, bound) = &sources[idx];
            if sized {
                // Clamp the subfield start below the source's provable
                // bound so the read is never entirely above it.
                let from = rng.random_range(0..4u8).min(bound - 1);
                let to = from + rng.random_range(0..4u8);
                out.push(format!("{s}.{from}.{to}"));
                total += u32::from(to - from + 1);
            } else {
                out.push(s.clone());
                total += u32::from(*bound);
            }
        }
    }
    let bound = match consts {
        // All-constant: fold right-to-left exactly like the resolver.
        Some(parts) => {
            let (mut value, mut pos) = (0i64, 0u32);
            for (v, width) in parts.into_iter().rev() {
                match width {
                    Some(w) => {
                        value += v << pos;
                        pos += u32::from(w);
                    }
                    None => value += v << pos, // leftmost fills to bit 31
                }
            }
            bits_needed(value)
        }
        None if total >= u32::from(UNBOUNDED) => UNBOUNDED,
        None => u8::try_from(total.max(1)).unwrap_or(UNBOUNDED),
    };
    (out.join(","), bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::Design;

    #[test]
    fn chains_elaborate_at_every_size() {
        for n in [1, 2, 16, 128] {
            let d = Design::elaborate(&chain(n)).unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(d.comb_order().len(), n + 1);
        }
    }

    #[test]
    fn random_specs_elaborate_for_many_seeds() {
        for seed in 0..50 {
            let spec = random_spec(seed, 20);
            Design::elaborate(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn random_specs_are_deterministic() {
        let a = rtl_lang::pretty(&random_spec(7, 30));
        let b = rtl_lang::pretty(&random_spec(7, 30));
        assert_eq!(a, b);
    }

    #[test]
    fn random_specs_differ_across_seeds() {
        let a = rtl_lang::pretty(&random_spec(1, 30));
        let b = rtl_lang::pretty(&random_spec(2, 30));
        assert_ne!(a, b);
    }
}
