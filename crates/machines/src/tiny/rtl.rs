//! The four-phase RTL implementation of the tiny computer.
//!
//! Follows the Appendix F specification's structure: a two-bit phase
//! counter decoded one-hot, a memory-address mux (`S ma phase.2 pc ir`),
//! opcode comparators on `ir.7.9`, and registers gated by phase bits.
//!
//! Phase timing (one memory port, one-cycle latency):
//!
//! | phase | action |
//! |-------|--------|
//! | P0    | issue instruction fetch at `pc` |
//! | P1    | latch `ir`; `pc := pc + 1` |
//! | P2    | issue operand read (LD/SU) or write `ac` (ST); branches load `pc` |
//! | P3    | `ac := mem` (LD) or `ac := (ac − mem) & 0x7FF`, `borrow := ac < mem` (SU) |

use super::MEM_WORDS;
use crate::builder::SpecBuilder;
use rtl_lang::{Spec, Word};

/// Builds the specification around a 128-word memory image.
pub fn spec(image: &[Word], cycles: Option<Word>) -> Spec {
    spec_with_trace(image, cycles, &[])
}

/// Builds the specification with chosen components traced — the Appendix F
/// original traced `state* pc* ac*`.
pub fn spec_with_trace(image: &[Word], cycles: Option<Word>, traced: &[&str]) -> Spec {
    assert_eq!(image.len(), MEM_WORDS, "image must be {MEM_WORDS} words");
    let mut b = SpecBuilder::new("tiny computer specification (asim2 reproduction of Appendix F)");
    if let Some(n) = cycles {
        b.cycles(n);
    }
    for t in traced {
        b.trace(t);
    }

    // Phase counter: a 2-bit state register decoded one-hot, exactly the
    // Appendix F `M state / A nextstate / S phase` trio.
    b.memory("state", "0", "nxst.0.1", "1", 1);
    b.alu("nxst", "4", "state", "1");
    b.selector("phase", "state.0.1", ["1", "2", "4", "8"]);

    // Opcode comparators.
    b.alu("isld", "12", "ir.7.9", "2");
    b.alu("isst", "12", "ir.7.9", "3");
    b.alu("isbb", "12", "ir.7.9", "4");
    b.alu("isbr", "12", "ir.7.9", "5");
    b.alu("issu", "12", "ir.7.9", "6");

    // Memory port: address mux and write gate.
    b.selector("ma", "phase.2", ["pc", "ir.0.6"]);
    b.alu("memwr", "8", "isst", "phase.2");
    b.memory_init("mem", "ma.0.6", "ac", "memwr", image.to_vec());

    // Instruction register.
    b.memory("ir", "0", "mem", "phase.1", 1);

    // Program counter: increment in P1, branch (or hold) in P2.
    b.alu("incpc", "4", "pc", "1");
    b.alu("bbtaken", "8", "isbb", "borrow");
    b.alu("taken", "9", "isbr", "bbtaken");
    b.selector("brtgt", "taken", ["pc", "ir.0.6"]);
    b.selector("newpc", "phase.2", ["incpc", "brtgt"]);
    b.alu("pcwr", "9", "phase.1", "phase.2");
    b.memory("pc", "0", "newpc", "pcwr", 1);

    // Accumulator and borrow flag (P3).
    b.alu("acsub", "5", "ac", "mem");
    b.selector("newac", "issu", ["mem", "acsub.0.10"]);
    b.alu("ldsu", "9", "isld", "issu");
    b.alu("acwr", "8", "phase.3", "ldsu");
    b.memory("ac", "0", "newac", "acwr", 1);
    b.alu("blt", "13", "ac", "mem");
    b.alu("bwr", "8", "phase.3", "issu");
    b.memory("borrow", "0", "blt", "bwr", 1);

    b.build()
}

/// Renders the specification as source text.
pub fn spec_source(image: &[Word], cycles: Option<Word>) -> String {
    rtl_lang::pretty(&spec(image, cycles))
}

/// Cycles per instruction of this implementation.
pub const CYCLES_PER_INSTRUCTION: u64 = 4;

#[cfg(test)]
mod tests {
    use super::super::{divider_image, iss::TinyIss, layout};
    use super::*;
    use rtl_core::{Design, Engine, Session, Until};
    use rtl_interp::{InterpOptions, Interpreter};

    /// Runs the RTL model for the division demo and compares the final
    /// memory image and registers with the ISS.
    fn cross_check(a: Word, b: Word) {
        let image = divider_image(a, b);

        let mut iss = TinyIss::new(image.clone());
        assert!(iss.run_until_spin(100_000));

        // Budget: the executed instructions plus slack spinning in `done`.
        let cycles = (iss.instructions + 8) * CYCLES_PER_INSTRUCTION;
        let spec = spec(&image, Some(cycles as Word));
        let design = Design::elaborate(&spec).unwrap_or_else(|e| panic!("{e}"));
        let mut sim = Interpreter::with_options(&design, InterpOptions::quiet());
        Session::over(&mut sim)
            .build()
            .run(Until::Spec)
            .into_result()
            .unwrap_or_else(|e| panic!("RTL failed: {e}"));

        let mem = design.find("mem").unwrap();
        let cells = sim.state().cells(mem);
        assert_eq!(
            cells[layout::Q as usize],
            a / b,
            "quotient of {a}/{b} in RTL memory"
        );
        assert_eq!(
            cells[layout::A as usize],
            a % b,
            "remainder of {a}/{b} in RTL memory"
        );
        // Data region identical between levels.
        assert_eq!(&cells[16..], &iss.mem[16..], "data cells for {a}/{b}");
        // Architectural registers agree too.
        let ac = design.find("ac").unwrap();
        assert_eq!(sim.state().output(ac), iss.ac, "ac for {a}/{b}");
    }

    #[test]
    fn division_matches_iss() {
        for (a, b) in [(17, 5), (20, 4), (3, 7), (0, 3), (9, 9)] {
            cross_check(a, b);
        }
    }

    #[test]
    fn spec_elaborates_cleanly() {
        let design = Design::elaborate(&spec(&divider_image(6, 2), Some(100))).unwrap();
        assert!(design.warnings().is_empty());
        assert_eq!(design.memories().len(), 6);
        assert_eq!(design.len(), 27);
    }

    #[test]
    fn trace_shows_phases_and_registers() {
        let image = divider_image(5, 5);
        let spec = spec_with_trace(&image, Some(7), &["state", "pc", "ac"]);
        let design = Design::elaborate(&spec).unwrap();
        let mut session = Session::over(Interpreter::new(&design)).capture().build();
        assert!(session.run(Until::Spec).completed());
        let text = session.output_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0], "Cycle   0 state= 0 pc= 0 ac= 0");
        // By cycle 5 (P1 of the second instruction... cycle 4 = P0 of
        // instr 1) pc has been incremented once.
        assert_eq!(lines[2], "Cycle   2 state= 2 pc= 1 ac= 0");
        // P3 of LD a: ac picks up the value at the cycle after P3.
        assert_eq!(lines[4], "Cycle   4 state= 0 pc= 1 ac= 5");
    }

    #[test]
    fn countdown() {
        let image = super::super::countdown_image(7);
        let mut iss = TinyIss::new(image.clone());
        assert!(iss.run_until_spin(10_000));
        assert_eq!(iss.mem[layout::Q as usize], 7);
        cross_check(7, 1);
    }
}
