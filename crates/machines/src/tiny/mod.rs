//! The tiny computer of Appendix F.
//!
//! "A small 10 bit microprocessor with five instructions (load, store,
//! branch, branch on borrow, and subtract) and 128 bytes of program and
//! data memory" (§5.3). The opcode lives in bits 7–9 of the instruction
//! word and the operand address in bits 0–6 — the thesis's macros `~LD
//! 256 ~ST 384 ~BB 512 ~BR 640 ~SU 768` are exactly `opcode << 7`.
//!
//! Like the stack machine, the tiny computer exists at two levels: an
//! instruction-set simulator ([`iss`]) and a four-phase RTL implementation
//! ([`rtl`]), cross-checked cell-for-cell by the test suite.

pub mod iss;
pub mod rtl;

use rtl_core::Word;

/// Memory size in words.
pub const MEM_WORDS: usize = 128;

/// The accumulator is masked to 11 bits on every update (the Appendix F
/// specification writes `alu.0.10` into `ac`).
pub const AC_MASK: Word = 0x7FF;

/// The five opcodes (instruction-word bits 7–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TinyOp {
    /// `ac := mem[addr]`.
    Ld = 2,
    /// `mem[addr] := ac`.
    St = 3,
    /// `if borrow then pc := addr`.
    Bb = 4,
    /// `pc := addr`.
    Br = 5,
    /// `borrow := ac < mem[addr]; ac := (ac - mem[addr]) & 0x7FF`.
    Su = 6,
}

impl TinyOp {
    /// Encodes an instruction word: `opcode << 7 | addr`.
    pub fn word(self, addr: Word) -> Word {
        assert!((0..128).contains(&addr), "address {addr} out of range");
        ((self as Word) << 7) | addr
    }

    /// Decodes bits 7–9; `None` for the undefined opcodes (which the
    /// machine treats as no-ops).
    pub fn decode(word: Word) -> Option<TinyOp> {
        match (word >> 7) & 7 {
            2 => Some(TinyOp::Ld),
            3 => Some(TinyOp::St),
            4 => Some(TinyOp::Bb),
            5 => Some(TinyOp::Br),
            6 => Some(TinyOp::Su),
            _ => None,
        }
    }
}

/// Data addresses used by the demo programs.
pub mod layout {
    /// Dividend / remainder.
    pub const A: i64 = 20;
    /// Divisor.
    pub const B: i64 = 21;
    /// Quotient.
    pub const Q: i64 = 22;
    /// The constant 2047 ≡ −1 (mod 2¹¹): subtracting it increments.
    pub const INC: i64 = 23;
}

/// Builds the 128-word memory image for the division demo: computes
/// `q := a div b` and `a := a mod b` by repeated subtraction, using the
/// subtract-2047 trick to increment (the machine has no add).
pub fn divider_image(a: Word, b: Word) -> Vec<Word> {
    assert!((0..=1000).contains(&a) && (1..=1000).contains(&b));
    use TinyOp::*;
    let mut mem = vec![0i64; MEM_WORDS];
    let code = [
        Ld.word(layout::A),   // 0: ac := a
        Su.word(layout::B),   // 1: ac := a - b, borrow := a < b
        Bb.word(8),           // 2: borrow? done
        St.word(layout::A),   // 3: a := ac
        Ld.word(layout::Q),   // 4: ac := q
        Su.word(layout::INC), // 5: ac := q + 1 (mod 2^11)
        St.word(layout::Q),   // 6: q := ac
        Br.word(0),           // 7: loop
        Br.word(8),           // 8: done: spin
    ];
    mem[..code.len()].copy_from_slice(&code);
    mem[layout::A as usize] = a;
    mem[layout::B as usize] = b;
    mem[layout::Q as usize] = 0;
    mem[layout::INC as usize] = 2047;
    mem
}

/// Builds a countdown image: decrements `a` until it borrows, leaving the
/// loop-trip count in `q`.
pub fn countdown_image(a: Word) -> Vec<Word> {
    divider_image(a, 1)
}

/// Instructions the division demo executes before reaching the spin loop
/// (used to size RTL cycle budgets: 4 cycles per instruction).
pub fn divider_instructions(a: Word, b: Word) -> u64 {
    let mut iss = iss::TinyIss::new(divider_image(a, b));
    iss.run_until_spin(1_000_000);
    iss.instructions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_words_match_thesis_macros() {
        // ~LD 256 ~ST 384 ~BB 512 ~BR 640 ~SU 768
        assert_eq!(TinyOp::Ld.word(0), 256);
        assert_eq!(TinyOp::St.word(0), 384);
        assert_eq!(TinyOp::Bb.word(0), 512);
        assert_eq!(TinyOp::Br.word(0), 640);
        assert_eq!(TinyOp::Su.word(0), 768);
        assert_eq!(
            TinyOp::Ld.word(30),
            286,
            "LD+30 from the Appendix F listing"
        );
    }

    #[test]
    fn decode_round_trips() {
        for op in [TinyOp::Ld, TinyOp::St, TinyOp::Bb, TinyOp::Br, TinyOp::Su] {
            assert_eq!(TinyOp::decode(op.word(99)), Some(op));
        }
        assert_eq!(TinyOp::decode(0), None);
        assert_eq!(TinyOp::decode(7 << 7), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn address_range_checked() {
        TinyOp::Ld.word(128);
    }
}
