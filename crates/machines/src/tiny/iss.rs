//! Instruction-set simulator for the tiny computer.

use super::{TinyOp, AC_MASK, MEM_WORDS};
use rtl_core::{land, Word};

/// Architectural state of the tiny computer at instruction granularity.
#[derive(Debug, Clone)]
pub struct TinyIss {
    /// The 128-word program/data memory.
    pub mem: Vec<Word>,
    /// Accumulator (11 bits).
    pub ac: Word,
    /// Borrow flag from the last `SU`.
    pub borrow: Word,
    /// Program counter.
    pub pc: Word,
    /// Instructions executed.
    pub instructions: u64,
}

impl TinyIss {
    /// Loads a 128-word memory image.
    ///
    /// # Panics
    ///
    /// Panics if the image is not exactly [`MEM_WORDS`] long.
    pub fn new(mem: Vec<Word>) -> Self {
        assert_eq!(mem.len(), MEM_WORDS, "image must be {MEM_WORDS} words");
        TinyIss {
            mem,
            ac: 0,
            borrow: 0,
            pc: 0,
            instructions: 0,
        }
    }

    /// Executes one instruction.
    pub fn step(&mut self) {
        let word = self.mem[(self.pc & 0x7F) as usize];
        let addr = land(word, 0x7F);
        self.pc = land(self.pc + 1, 0x7F);
        self.instructions += 1;
        match TinyOp::decode(word) {
            Some(TinyOp::Ld) => self.ac = self.mem[addr as usize],
            Some(TinyOp::St) => self.mem[addr as usize] = self.ac,
            Some(TinyOp::Bb) if self.borrow != 0 => self.pc = addr,
            Some(TinyOp::Bb) => {}
            Some(TinyOp::Br) => self.pc = addr,
            Some(TinyOp::Su) => {
                let m = self.mem[addr as usize];
                self.borrow = Word::from(self.ac < m);
                self.ac = land(self.ac - m, AC_MASK);
            }
            None => {}
        }
    }

    /// Runs until the machine reaches a self-branch (`BR` to itself — the
    /// demo programs' spin loop) or the step limit.
    pub fn run_until_spin(&mut self, max_steps: u64) -> bool {
        for _ in 0..max_steps {
            let word = self.mem[(self.pc & 0x7F) as usize];
            if TinyOp::decode(word) == Some(TinyOp::Br) && land(word, 0x7F) == self.pc {
                return true;
            }
            self.step();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::super::{divider_image, layout};
    use super::*;

    #[test]
    fn division_by_repeated_subtraction() {
        for (a, b) in [(17, 5), (20, 4), (3, 7), (0, 3), (100, 1)] {
            let mut iss = TinyIss::new(divider_image(a, b));
            assert!(iss.run_until_spin(100_000), "must reach the spin loop");
            assert_eq!(iss.mem[layout::Q as usize], a / b, "quotient of {a}/{b}");
            assert_eq!(iss.mem[layout::A as usize], a % b, "remainder of {a}/{b}");
        }
    }

    #[test]
    fn borrow_sets_only_on_underflow() {
        let mut iss = TinyIss::new(divider_image(5, 3));
        // After the first SU (5 - 3) no borrow.
        iss.step(); // LD
        iss.step(); // SU
        assert_eq!(iss.borrow, 0);
        assert_eq!(iss.ac, 2);
    }

    #[test]
    fn subtraction_wraps_to_11_bits() {
        let mut iss = TinyIss::new(divider_image(0, 3));
        iss.step(); // LD a (0)
        iss.step(); // SU b (3)
        assert_eq!(iss.borrow, 1);
        assert_eq!(iss.ac, land(-3, AC_MASK));
        assert_eq!(iss.ac, 2045);
    }

    #[test]
    fn undefined_opcodes_are_noops() {
        let mut mem = vec![0i64; MEM_WORDS];
        mem[0] = 0; // opcode 0: nop
        mem[1] = TinyOp::Br.word(1);
        let mut iss = TinyIss::new(mem);
        iss.step();
        assert_eq!(iss.pc, 1);
        assert_eq!(iss.ac, 0);
    }
}
