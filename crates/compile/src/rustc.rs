//! Driving the host compiler — the "Pascal Compile" row of Figure 5.1.
//!
//! ASIM II's pipeline was *generate Pascal → `pc` → run `a.out`*. Ours is
//! *generate Rust → `rustc -O` → run the binary*. This module owns the
//! second and third steps, with timing hooks so the Figure 5.1 harness can
//! report every row.

use crate::emit::{rust::emit_rust, EmitOptions};
use rtl_core::Design;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Errors from the build-and-run pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Could not create the scratch directory or write the source.
    Io(std::io::Error),
    /// `rustc` is not on the `PATH`.
    RustcMissing(std::io::Error),
    /// `rustc` rejected the generated program (a codegen bug — the stderr
    /// is attached).
    CompileFailed(String),
    /// The compiled simulator exited non-zero (runtime error in the
    /// design, e.g. selector out of range); stderr attached.
    RunFailed {
        /// Exit code, if any.
        code: Option<i32>,
        /// What the simulator printed to stderr.
        stderr: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Io(e) => write!(f, "i/o error: {e}"),
            PipelineError::RustcMissing(e) => write!(f, "rustc not found: {e}"),
            PipelineError::CompileFailed(s) => {
                write!(f, "generated program failed to compile:\n{s}")
            }
            PipelineError::RunFailed { code, stderr } => {
                write!(f, "compiled simulator failed (code {code:?}): {stderr}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}

/// `true` if a usable `rustc` is on the `PATH`.
pub fn rustc_available() -> bool {
    Command::new("rustc")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Timings for the preparation phases (the top rows of Figure 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildTimings {
    /// "Generate code": specification → Rust source.
    pub generate: Duration,
    /// "Pascal Compile" equivalent: `rustc -O` wall time.
    pub compile: Duration,
}

/// A compiled standalone simulator on disk. A scratch-directory build is
/// removed on drop; a cache-directory build persists for later processes.
#[derive(Debug)]
pub struct CompiledSim {
    dir: PathBuf,
    binary: PathBuf,
    persistent: bool,
    /// The generated source (kept for inspection).
    pub source: String,
    /// Preparation timings (zero compile time on a disk-cache hit).
    pub timings: BuildTimings,
}

impl CompiledSim {
    /// Path of the compiled binary.
    pub fn binary(&self) -> &Path {
        &self.binary
    }

    /// Runs the simulator, feeding `stdin` and capturing stdout.
    ///
    /// # Errors
    ///
    /// [`PipelineError::RunFailed`] when the simulator exits non-zero.
    pub fn run(&self, stdin: &[u8]) -> Result<(String, Duration), PipelineError> {
        self.run_env(stdin, &[])
    }

    /// [`run`](CompiledSim::run) with extra environment variables — the
    /// channel a cached binary reads its per-run cycle bound from (see
    /// [`EmitOptions::cycles_from_env`]).
    ///
    /// # Errors
    ///
    /// [`PipelineError::RunFailed`] when the simulator exits non-zero.
    pub fn run_env(
        &self,
        stdin: &[u8],
        env: &[(&str, String)],
    ) -> Result<(String, Duration), PipelineError> {
        use std::io::Write as _;
        let start = Instant::now();
        let mut command = Command::new(&self.binary);
        for (key, value) in env {
            command.env(key, value);
        }
        let mut child = command
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()?;
        child.stdin.take().expect("piped stdin").write_all(stdin)?;
        let output = child.wait_with_output()?;
        let elapsed = start.elapsed();
        if !output.status.success() {
            return Err(PipelineError::RunFailed {
                code: output.status.code(),
                stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
            });
        }
        Ok((
            String::from_utf8_lossy(&output.stdout).into_owned(),
            elapsed,
        ))
    }
}

impl Drop for CompiledSim {
    fn drop(&mut self) {
        if !self.persistent {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

/// Generates Rust for `design`, compiles it with `rustc -O`, and returns
/// the runnable artifact with preparation timings.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn build(design: &Design, options: &EmitOptions) -> Result<CompiledSim, PipelineError> {
    let gen_start = Instant::now();
    let source = emit_rust(design, options);
    let generate = gen_start.elapsed();
    let dir = scratch_dir()?;
    match compile_into(&dir, source, generate, false) {
        Ok(sim) => Ok(sim),
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            Err(e)
        }
    }
}

/// Writes `source` into `dir` as `main.rs`, compiles it to `dir/sim`.
fn compile_into(
    dir: &Path,
    source: String,
    generate: Duration,
    persistent: bool,
) -> Result<CompiledSim, PipelineError> {
    let src_path = dir.join("main.rs");
    let bin_path = dir.join("sim");
    std::fs::write(&src_path, &source)?;

    let compile_start = Instant::now();
    let output = Command::new("rustc")
        .args(["--edition", "2021", "-O", "-o"])
        .arg(&bin_path)
        .arg(&src_path)
        .output()
        .map_err(PipelineError::RustcMissing)?;
    let compile = compile_start.elapsed();
    if !output.status.success() {
        let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
        return Err(PipelineError::CompileFailed(stderr));
    }

    Ok(CompiledSim {
        dir: dir.to_path_buf(),
        binary: bin_path,
        persistent,
        source,
        timings: BuildTimings { generate, compile },
    })
}

fn scratch_dir() -> std::io::Result<PathBuf> {
    unique_dir(&std::env::temp_dir(), "asim2")
}

/// A private build directory *under the cache root*, so publishing it is
/// a same-filesystem rename.
fn staging_dir(root: &Path) -> std::io::Result<PathBuf> {
    unique_dir(root, ".staging")
}

fn unique_dir(parent: &Path, prefix: &str) -> std::io::Result<PathBuf> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = parent.join(format!("{prefix}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// A compiled-binary cache for the generated-simulator pipeline, keyed by
/// a stable fingerprint of the *emitted source* (which captures the full
/// design semantics plus every emit option — the shape-only checkpoint
/// fingerprint would collide across distinct fuzz designs).
///
/// Two layers:
///
/// * **in-process** — hits return the same [`CompiledSim`] handle, so one
///   campaign/sweep invokes `rustc` once per distinct design;
/// * **on disk** (optional, [`BinaryCache::at_dir`]) — binaries persist
///   under the directory (e.g. a campaign's `bin-cache/`), so a resumed or
///   repeated run skips `rustc` entirely.
///
/// Shareable across worker threads (`Arc<BinaryCache>`): concurrent
/// misses for the same design race benignly — both compile, one handle
/// wins the map slot, disk publication is an atomic rename.
#[derive(Debug, Default)]
pub struct BinaryCache {
    dir: Option<PathBuf>,
    map: std::sync::Mutex<std::collections::HashMap<u64, std::sync::Arc<CompiledSim>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl BinaryCache {
    /// An in-process (memory-only) cache.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// A cache that also persists binaries under `dir` (created on first
    /// use).
    pub fn at_dir(dir: impl Into<PathBuf>) -> Self {
        BinaryCache {
            dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// `(hits, misses)` so far — a campaign reports these.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The compiled simulator for `design` under `options`, building it on
    /// a cache miss.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn get(
        &self,
        design: &Design,
        options: &EmitOptions,
    ) -> Result<std::sync::Arc<CompiledSim>, PipelineError> {
        use std::sync::atomic::Ordering;
        use std::sync::Arc;

        let gen_start = Instant::now();
        let source = emit_rust(design, options);
        let generate = gen_start.elapsed();
        let mut fp = rtl_core::Fingerprint::new();
        fp.write(source.as_bytes());
        let key = fp.finish();

        if let Some(sim) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(sim));
        }

        let sim = match &self.dir {
            Some(root) => {
                let slot = root.join(format!("{key:016x}"));
                if slot.join("sim").is_file() {
                    // A previous process left the compiled binary behind.
                    Arc::new(CompiledSim {
                        binary: slot.join("sim"),
                        dir: slot,
                        persistent: true,
                        source,
                        timings: BuildTimings {
                            generate,
                            compile: Duration::ZERO,
                        },
                    })
                } else {
                    // Compile into a private directory, then publish it
                    // with an atomic rename so concurrent workers and
                    // processes never observe a half-written binary.
                    // Stage *inside* the cache root: the publication
                    // rename below must not cross filesystems (a temp-dir
                    // staging area would EXDEV whenever /tmp is tmpfs and
                    // the cache directory is not).
                    std::fs::create_dir_all(root)?;
                    let staging = staging_dir(root)?;
                    let built = match compile_into(&staging, source, generate, true) {
                        Ok(built) => built,
                        Err(e) => {
                            let _ = std::fs::remove_dir_all(&staging);
                            return Err(e);
                        }
                    };
                    match std::fs::rename(&staging, &slot) {
                        Ok(()) => Arc::new(CompiledSim {
                            binary: slot.join("sim"),
                            dir: slot,
                            persistent: true,
                            source: built.source.clone(),
                            timings: built.timings,
                        }),
                        Err(_) if slot.join("sim").is_file() => {
                            // Lost the publication race; use the winner.
                            let _ = std::fs::remove_dir_all(&staging);
                            Arc::new(CompiledSim {
                                binary: slot.join("sim"),
                                dir: slot,
                                persistent: true,
                                source: built.source.clone(),
                                timings: built.timings,
                            })
                        }
                        Err(e) => {
                            let _ = std::fs::remove_dir_all(&staging);
                            return Err(PipelineError::Io(e));
                        }
                    }
                }
            }
            None => {
                let dir = scratch_dir()?;
                match compile_into(&dir, source, generate, false) {
                    Ok(sim) => Arc::new(sim),
                    Err(e) => {
                        let _ = std::fs::remove_dir_all(&dir);
                        return Err(e);
                    }
                }
            }
        };

        self.misses.fetch_add(1, Ordering::Relaxed);
        // A racing worker may have inserted meanwhile; keep the first so
        // every holder shares one handle.
        let mut map = self.map.lock().expect("cache lock");
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&sim));
        Ok(Arc::clone(entry))
    }
}
