//! Driving the host compiler — the "Pascal Compile" row of Figure 5.1.
//!
//! ASIM II's pipeline was *generate Pascal → `pc` → run `a.out`*. Ours is
//! *generate Rust → `rustc -O` → run the binary*. This module owns the
//! second and third steps, with timing hooks so the Figure 5.1 harness can
//! report every row.

use crate::emit::{rust::emit_rust, EmitOptions};
use rtl_core::Design;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Errors from the build-and-run pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Could not create the scratch directory or write the source.
    Io(std::io::Error),
    /// `rustc` is not on the `PATH`.
    RustcMissing(std::io::Error),
    /// `rustc` rejected the generated program (a codegen bug — the stderr
    /// is attached).
    CompileFailed(String),
    /// The compiled simulator exited non-zero (runtime error in the
    /// design, e.g. selector out of range); stderr attached.
    RunFailed {
        /// Exit code, if any.
        code: Option<i32>,
        /// What the simulator printed to stderr.
        stderr: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Io(e) => write!(f, "i/o error: {e}"),
            PipelineError::RustcMissing(e) => write!(f, "rustc not found: {e}"),
            PipelineError::CompileFailed(s) => {
                write!(f, "generated program failed to compile:\n{s}")
            }
            PipelineError::RunFailed { code, stderr } => {
                write!(f, "compiled simulator failed (code {code:?}): {stderr}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}

/// `true` if a usable `rustc` is on the `PATH`.
pub fn rustc_available() -> bool {
    Command::new("rustc")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Timings for the preparation phases (the top rows of Figure 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildTimings {
    /// "Generate code": specification → Rust source.
    pub generate: Duration,
    /// "Pascal Compile" equivalent: `rustc -O` wall time.
    pub compile: Duration,
}

/// A compiled standalone simulator on disk. The scratch directory is
/// removed on drop.
#[derive(Debug)]
pub struct CompiledSim {
    dir: PathBuf,
    binary: PathBuf,
    /// The generated source (kept for inspection).
    pub source: String,
    /// Preparation timings.
    pub timings: BuildTimings,
}

impl CompiledSim {
    /// Path of the compiled binary.
    pub fn binary(&self) -> &Path {
        &self.binary
    }

    /// Runs the simulator, feeding `stdin` and capturing stdout.
    ///
    /// # Errors
    ///
    /// [`PipelineError::RunFailed`] when the simulator exits non-zero.
    pub fn run(&self, stdin: &[u8]) -> Result<(String, Duration), PipelineError> {
        use std::io::Write as _;
        let start = Instant::now();
        let mut child = Command::new(&self.binary)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()?;
        child.stdin.take().expect("piped stdin").write_all(stdin)?;
        let output = child.wait_with_output()?;
        let elapsed = start.elapsed();
        if !output.status.success() {
            return Err(PipelineError::RunFailed {
                code: output.status.code(),
                stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
            });
        }
        Ok((
            String::from_utf8_lossy(&output.stdout).into_owned(),
            elapsed,
        ))
    }
}

impl Drop for CompiledSim {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Generates Rust for `design`, compiles it with `rustc -O`, and returns
/// the runnable artifact with preparation timings.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn build(design: &Design, options: &EmitOptions) -> Result<CompiledSim, PipelineError> {
    let gen_start = Instant::now();
    let source = emit_rust(design, options);
    let generate = gen_start.elapsed();

    let dir = scratch_dir()?;
    let src_path = dir.join("main.rs");
    let bin_path = dir.join("sim");
    std::fs::write(&src_path, &source)?;

    let compile_start = Instant::now();
    let output = Command::new("rustc")
        .args(["--edition", "2021", "-O", "-o"])
        .arg(&bin_path)
        .arg(&src_path)
        .output()
        .map_err(PipelineError::RustcMissing)?;
    let compile = compile_start.elapsed();
    if !output.status.success() {
        let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
        let _ = std::fs::remove_dir_all(&dir);
        return Err(PipelineError::CompileFailed(stderr));
    }

    Ok(CompiledSim {
        dir,
        binary: bin_path,
        source,
        timings: BuildTimings { generate, compile },
    })
}

fn scratch_dir() -> std::io::Result<PathBuf> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("asim2-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}
