//! Source-code backends.
//!
//! ASIM II "produces Pascal code from the specification which is then
//! compiled by a standard Pascal compiler and executed" (§3.1). This
//! reproduction keeps a faithful [`pascal`] backend for the Figure 4.1–4.3
//! golden artifacts, and adds a [`rust`] backend that plays Pascal's role
//! in the Figure 5.1 pipeline: the generated program is compiled by
//! `rustc` (see [`rustc`](crate::rustc)) and executed as a standalone
//! simulator.

pub mod pascal;
pub mod rust;

use rtl_core::Word;

/// Options shared by the source backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmitOptions {
    /// Cycle count baked into the program. `None` uses the spec's `= n`
    /// clause (or 0, which makes the program prompt, as the original did).
    pub cycles: Option<Word>,
    /// Emit trace output (cycle lines, traced values, read/write lines).
    pub trace: bool,
    /// Faithful interactive behaviour: prompt "Number of cycles to trace"
    /// when the count is zero and "Continue to cycle (0 to quit)" at the
    /// end. Off for batch/differential runs.
    pub interactive: bool,
    /// Let the `ASIM2_CYCLES` environment variable override the baked
    /// cycle bound at run time. This is what makes a compiled simulator
    /// binary reusable across scenario horizons — the binary cache keys on
    /// the generated source, so the bound must not be baked into it.
    pub cycles_from_env: bool,
    /// Optimization settings for the lowering pass.
    pub opt: crate::lower::OptOptions,
}

impl Default for EmitOptions {
    fn default() -> Self {
        EmitOptions {
            cycles: None,
            trace: true,
            interactive: false,
            cycles_from_env: false,
            opt: crate::lower::OptOptions::full(),
        }
    }
}
