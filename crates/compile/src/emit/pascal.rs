//! The Pascal source backend — fidelity to the original ASIM II output.
//!
//! The thesis's Figures 4.1–4.3 show the Pascal that ASIM II generated for
//! each primitive; Appendix E lists the full program for the stack machine.
//! This backend reproduces that output style: `ljb⟨name⟩` variables,
//! `temp⟨name⟩` memory latches, `adr/data/opn⟨name⟩` capture variables, a
//! `land` set-trick function, `dologic`, `sinput`/`soutput` and the
//! `while cyclecount <= cycles` main loop.
//!
//! One deliberate difference from Appendix E (documented as divergence D1):
//! data expressions are captured alongside addresses and operations, giving
//! the simultaneous memory-update semantics every engine in this repository
//! implements.

use super::EmitOptions;
use crate::ir::{CycleIr, IrExpr, MemPlan, OpnPlan, Step, TraceDecision};
use crate::lower::lower_with_trace;
use rtl_core::{Design, RKind, Word};
use std::fmt::Write as _;

/// Emits a complete Pascal program for the design.
///
/// ```
/// use rtl_core::Design;
/// use rtl_compile::emit::{pascal::emit_pascal, EmitOptions};
/// let d = Design::from_source(
///     "# counter\n= 3\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
/// ).unwrap();
/// let src = emit_pascal(&d, &EmitOptions::default());
/// assert!(src.starts_with("program simulator (input, output);"));
/// assert!(src.contains("ljbnext := tempcount + 1;"));
/// ```
pub fn emit_pascal(design: &Design, options: &EmitOptions) -> String {
    let ir = lower_with_trace(design, options.opt, options.trace);
    let mut e = Emitter {
        design,
        out: String::new(),
    };
    e.program(&ir, options);
    e.out
}

struct Emitter<'d> {
    design: &'d Design,
    out: String,
}

impl Emitter<'_> {
    fn line(&mut self, s: &str) {
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn linef(&mut self, args: std::fmt::Arguments<'_>) {
        let _ = self.out.write_fmt(args);
        self.out.push('\n');
    }

    fn var(&self, id: rtl_core::CompId) -> String {
        let name = self.design.name(id);
        if self.design.comp(id).kind.is_memory() {
            format!("temp{name}")
        } else {
            format!("ljb{name}")
        }
    }

    fn program(&mut self, ir: &CycleIr, options: &EmitOptions) {
        self.line("program simulator (input, output);");
        let title = self.design.title().to_string();
        self.linef(format_args!("{{{title}}}"));

        self.declarations();
        self.fixed_runtime();
        self.initvalues();
        self.main_block(ir, options);
    }

    fn declarations(&mut self) {
        let mut scalars: Vec<String> = Vec::new();
        for (id, comp) in self.design.iter() {
            let name = comp.name.as_str();
            match comp.kind {
                RKind::Memory(_) => {
                    scalars.push(format!("temp{name}"));
                    scalars.push(format!("adr{name}"));
                    scalars.push(format!("data{name}"));
                    scalars.push(format!("opn{name}"));
                }
                _ => scalars.push(self.var(id)),
            }
        }
        if scalars.is_empty() {
            self.line("var cycles, cyclecount: integer;");
        } else {
            self.linef(format_args!("var {}: integer;", scalars.join(", ")));
            self.line("    cycles, cyclecount: integer;");
        }
        for (_, comp) in self.design.iter() {
            if let RKind::Memory(m) = &comp.kind {
                self.linef(format_args!(
                    "    ljb{}: array[0..{}] of integer;",
                    comp.name,
                    m.size - 1
                ));
            }
        }
        self.line("");
    }

    fn fixed_runtime(&mut self) {
        // land: the set-based bitwise AND of Appendix C/E.
        self.line("function land (a, b: integer): integer;");
        self.line("type bitnos = 0..31;");
        self.line("     bigset = set of bitnos;");
        self.line("var intset: record case boolean of");
        self.line("      false: (i, j: integer);");
        self.line("      true:  (x, y: bigset)");
        self.line("    end;");
        self.line("begin");
        self.line("  with intset do begin");
        self.line("    i := a;");
        self.line("    j := b;");
        self.line("    x := x * y;");
        self.line("    land := i");
        self.line("  end");
        self.line("end {land};");
        self.line("");
        self.line("function dologic (funct, left, right: integer): integer;");
        self.line("const mask = 2147483647;");
        self.line("var value: integer;");
        self.line("begin");
        self.line("  value := 0;");
        self.line("  case funct of");
        self.line("    0 : value := 0;");
        self.line("    1 : value := right;");
        self.line("    2 : value := left;");
        self.line("    3 : value := mask - left;");
        self.line("    4 : value := left + right;");
        self.line("    5 : value := left - right;");
        self.line("    6 : while (right > 0) and (left <> 0) do begin");
        self.line("          left := land(left + left, mask);");
        self.line("          value := left;");
        self.line("          right := right - 1;");
        self.line("        end;");
        self.line("    7 : value := left * right;");
        self.line("    8 : value := land(left, right);");
        self.line("    9 : value := left + right - land(left, right);");
        self.line("    10: value := left + right - land(left, right) * 2;");
        self.line("    11: value := 0;");
        self.line("    12: if left = right then value := 1;");
        self.line("    13: if left < right then value := 1");
        self.line("  end; {case}");
        self.line("  dologic := value;");
        self.line("end; {dologic}");
        self.line("");
        self.line("function sinput (address: integer): integer;");
        self.line("var datum: char;");
        self.line("    data: integer;");
        self.line("begin");
        self.line("  if address = 0 then begin");
        self.line("    read(input, datum);");
        self.line("    sinput := ord(datum)");
        self.line("  end");
        self.line("  else if address = 1 then begin");
        self.line("    read(input, data);");
        self.line("    sinput := data");
        self.line("  end");
        self.line("  else begin");
        self.line("    write(output, 'Input from address ', address:1, ': ');");
        self.line("    readln(input, data);");
        self.line("    sinput := data;");
        self.line("  end");
        self.line("end; {sinput}");
        self.line("");
        self.line("procedure soutput (address, data: integer);");
        self.line("begin");
        self.line("  if address = 0 then writeln(output, chr(data))");
        self.line("  else if address = 1 then writeln(output, data)");
        self.line("  else writeln(output, 'Output to address ', address:1, ': ', data:1)");
        self.line("end; {soutput}");
        self.line("");
    }

    fn initvalues(&mut self) {
        self.line("procedure initvalues;");
        self.line("var i: integer;");
        self.line("begin");
        for (_, comp) in self.design.iter() {
            if let RKind::Memory(m) = &comp.kind {
                let name = comp.name.as_str();
                if m.init.iter().any(|&v| v != 0) {
                    for (i, v) in m.init.iter().enumerate() {
                        self.linef(format_args!("  ljb{name}[{i}] := {v};"));
                    }
                } else {
                    self.linef(format_args!("  for i := 0 to {} do", m.size - 1));
                    self.linef(format_args!("    ljb{name}[i] := 0;"));
                }
                self.linef(format_args!("  temp{name} := 0;"));
            }
        }
        self.line("end; {initvalues}");
        self.line("");
    }

    fn main_block(&mut self, ir: &CycleIr, options: &EmitOptions) {
        let cycles = options.cycles.or(self.design.cycles()).unwrap_or(0);
        self.line("begin");
        self.line("  initvalues;");
        self.linef(format_args!("  cycles := {cycles};"));
        self.line("  if cycles = 0 then begin");
        self.line("    writeln('Number of cycles to trace');");
        self.line("    read(cycles);");
        self.line("  end;");
        self.line("  cyclecount := 0;");
        self.line("  while cyclecount <= cycles do begin");

        for step in &ir.steps {
            match step {
                Step::Assign { id, expr } => {
                    let var = self.var(*id);
                    // Eq/Lt at top level render as Appendix-E if/then/else.
                    match expr {
                        IrExpr::Eq(a, b) => {
                            let (a, b) = (self.expr(a), self.expr(b));
                            self.linef(format_args!("    if {a} = {b} then {var} := 1"));
                            self.linef(format_args!("    else {var} := 0;"));
                        }
                        IrExpr::Lt(a, b) => {
                            let (a, b) = (self.expr(a), self.expr(b));
                            self.linef(format_args!("    if {a} < {b} then {var} := 1"));
                            self.linef(format_args!("    else {var} := 0;"));
                        }
                        _ => {
                            let rhs = self.expr(expr);
                            self.linef(format_args!("    {var} := {rhs};"));
                        }
                    }
                }
                Step::Select { id, select, cases } => {
                    let var = self.var(*id);
                    let sel = self.expr(select);
                    self.linef(format_args!("    case {sel} of"));
                    for (i, c) in cases.iter().enumerate() {
                        let rhs = self.expr(c);
                        let sep = if i + 1 == cases.len() { "" } else { ";" };
                        self.linef(format_args!("      {i}: {var} := {rhs}{sep}"));
                    }
                    self.line("    end;");
                }
            }
        }

        if ir.trace {
            self.line("    write('Cycle ', cyclecount:3);");
            for &t in &ir.traced {
                let name = self.design.name(t).to_string();
                let var = self.var(t);
                self.linef(format_args!("    write(' {name}= ', {var}:1);"));
            }
            self.line("    writeln;");
        }

        for m in &ir.mems {
            let name = self.design.name(m.id).to_string();
            let addr = self.expr(&m.addr);
            self.linef(format_args!("    adr{name} := {addr};"));
            if let OpnPlan::Dynamic(e) = &m.opn {
                let opn = self.expr(e);
                self.linef(format_args!("    opn{name} := {opn};"));
            }
            if let Some(d) = &m.data {
                let data = self.expr(d);
                self.linef(format_args!("    data{name} := {data};"));
            }
        }

        for m in &ir.mems {
            self.mem_update(m, ir.trace);
        }

        self.line("    cyclecount := cyclecount + 1;");
        self.line("    if cyclecount = cycles + 1 then begin");
        self.line("      writeln('Continue to cycle (0 to quit)');");
        self.line("      read(cycles);");
        self.line("    end;");
        self.line("  end; {while}");
        self.line("end.");
    }

    fn mem_update(&mut self, m: &MemPlan, trace: bool) {
        let name = self.design.name(m.id).to_string();
        match &m.opn {
            OpnPlan::Const(op) => {
                let arm = rtl_core::land(*op, 3);
                let body = self.arm_body(&name, arm);
                for l in body {
                    self.linef(format_args!("    {l}"));
                }
            }
            OpnPlan::Dynamic(_) => {
                self.linef(format_args!("    case land(opn{name}, 3) of"));
                for arm in 0..4 {
                    let body = self.arm_body(&name, arm);
                    if body.len() == 1 {
                        let sep = if arm == 3 { "" } else { ";" };
                        self.linef(format_args!(
                            "      {arm}: {}{sep}",
                            body[0].trim_end_matches(';')
                        ));
                    } else {
                        self.linef(format_args!("      {arm}: begin"));
                        for l in &body {
                            self.linef(format_args!("        {l}"));
                        }
                        let sep = if arm == 3 { "" } else { ";" };
                        self.linef(format_args!("      end{sep}"));
                    }
                }
                self.line("    end; {case}");
            }
        }
        if trace {
            let opn_text = match &m.opn {
                OpnPlan::Const(op) => op.to_string(),
                OpnPlan::Dynamic(_) => format!("opn{name}"),
            };
            match m.trace_write {
                TraceDecision::Never => {}
                TraceDecision::Always => self.linef(format_args!(
                    "    writeln(' Write to {name} at ', adr{name}:1, ': ', temp{name}:1);"
                )),
                TraceDecision::Dynamic => {
                    self.linef(format_args!("    if land({opn_text}, 5) = 5 then"));
                    self.linef(format_args!(
                        "      writeln(' Write to {name} at ', adr{name}:1, ': ', temp{name}:1);"
                    ));
                }
            }
            match m.trace_read {
                TraceDecision::Never => {}
                TraceDecision::Always => self.linef(format_args!(
                    "    writeln(' Read from {name} at ', adr{name}:1, ': ', temp{name}:1);"
                )),
                TraceDecision::Dynamic => {
                    self.linef(format_args!("    if land({opn_text}, 9) = 8 then"));
                    self.linef(format_args!(
                        "      writeln(' Read from {name} at ', adr{name}:1, ': ', temp{name}:1);"
                    ));
                }
            }
        }
    }

    fn arm_body(&self, name: &str, arm: Word) -> Vec<String> {
        match arm {
            0 => vec![format!("temp{name} := ljb{name}[adr{name}];")],
            1 => vec![
                format!("temp{name} := data{name};"),
                format!("ljb{name}[adr{name}] := temp{name};"),
            ],
            2 => vec![format!("temp{name} := sinput(adr{name});")],
            _ => vec![
                format!("temp{name} := data{name};"),
                format!("soutput(adr{name}, temp{name});"),
            ],
        }
    }

    fn expr(&self, e: &IrExpr) -> String {
        match e {
            IrExpr::Const(v) => {
                if *v < 0 {
                    format!("({v})")
                } else {
                    format!("{v}")
                }
            }
            IrExpr::Output(c) => self.var(*c),
            IrExpr::Field {
                inner,
                mask,
                rshift,
            } => {
                let i = self.expr(inner);
                if *rshift == 0 {
                    format!("land({i}, {mask})")
                } else {
                    format!("land({i}, {mask}) div {}", 1i64 << rshift)
                }
            }
            IrExpr::Shl { inner, amount } => {
                format!("{} * {}", self.expr(inner), 1i64 << amount)
            }
            IrExpr::Sum(terms) => {
                let parts: Vec<String> = terms.iter().map(|t| self.expr(t)).collect();
                parts.join(" + ")
            }
            IrExpr::Not(a) => format!("2147483647 - {}", self.paren(a)),
            IrExpr::Add(a, b) => format!("{} + {}", self.paren(a), self.paren(b)),
            IrExpr::Sub(a, b) => format!("{} - {}", self.paren(a), self.paren(b)),
            IrExpr::Mul(a, b) => format!("{} * {}", self.paren(a), self.paren(b)),
            IrExpr::ShlLoop(a, b) => {
                format!("dologic(6, {}, {})", self.expr(a), self.expr(b))
            }
            IrExpr::And(a, b) => format!("land({}, {})", self.expr(a), self.expr(b)),
            IrExpr::Or(a, b) => {
                let (x, y) = (self.paren(a), self.paren(b));
                format!("{x} + {y} - land({x}, {y})")
            }
            IrExpr::Xor(a, b) => {
                let (x, y) = (self.paren(a), self.paren(b));
                format!("{x} + {y} - land({x}, {y}) * 2")
            }
            // Nested comparisons (not produced by the lowering today, but
            // legal IR): Pascal ord() of a boolean.
            IrExpr::Eq(a, b) => format!("ord({} = {})", self.expr(a), self.expr(b)),
            IrExpr::Lt(a, b) => format!("ord({} < {})", self.expr(a), self.expr(b)),
            IrExpr::Dologic {
                funct, left, right, ..
            } => format!(
                "dologic({}, {}, {})",
                self.expr(funct),
                self.expr(left),
                self.expr(right)
            ),
        }
    }

    /// Parenthesizes compound sub-expressions for Pascal precedence.
    fn paren(&self, e: &IrExpr) -> String {
        let s = self.expr(e);
        match e {
            IrExpr::Const(_) | IrExpr::Output(_) | IrExpr::Dologic { .. } => s,
            IrExpr::Field { rshift: 0, .. } | IrExpr::And(..) | IrExpr::ShlLoop(..) => s,
            _ => format!("({s})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit(src: &str) -> String {
        let d = Design::from_source(src).unwrap_or_else(|e| panic!("{e}"));
        emit_pascal(&d, &EmitOptions::default())
    }

    /// Figure 4.1: a generic ALU generates a `dologic` call, a
    /// constant-function ALU generates inline code.
    #[test]
    fn figure_4_1_alu() {
        let src = emit(
            "# fig41\nalu add compute left .\nA alu compute left 3048\n\
             A add 4 left 3048\nA compute 0 0 0\nM left 0 0 0 1 .",
        );
        assert!(
            src.contains("ljbalu := dologic(ljbcompute, templeft, 3048);"),
            "{src}"
        );
        assert!(src.contains("ljbadd := templeft + 3048;"), "{src}");
    }

    /// Figure 4.2: a selector generates a `case` statement.
    #[test]
    fn figure_4_2_selector() {
        let src = emit(
            "# fig42\nselector index v0 v1 v2 v3 .\nS selector index v0 v1 v2 v3\n\
             A index 0 0 0\nA v0 0 0 0\nA v1 0 0 0\nA v2 0 0 0\nA v3 0 0 0 .",
        );
        assert!(src.contains("case ljbindex of"), "{src}");
        assert!(src.contains("0: ljbselector := ljbv0;"), "{src}");
        assert!(src.contains("3: ljbselector := ljbv3"), "{src}");
    }

    /// Figure 4.3: memory initialization plus the operation `case` and the
    /// trace-write/trace-read conditions.
    #[test]
    fn figure_4_3_memory() {
        let src = emit(
            "# fig43\nmemory address data operation wide .\n\
             M memory address data operation -4 12 34 56 78\n\
             A address 0 0 0\nA data 0 0 0\nA operation 2 wide 0\nM wide 0 0 0 16 .",
        );
        // Initialization section (Figure 4.3 upper half).
        assert!(src.contains("ljbmemory[0] := 12;"), "{src}");
        assert!(src.contains("ljbmemory[3] := 78;"), "{src}");
        // Operation dispatch (Figure 4.3 lower half).
        assert!(src.contains("case land(opnmemory, 3) of"), "{src}");
        assert!(src.contains("tempmemory := ljbmemory[adrmemory]"), "{src}");
        assert!(src.contains("sinput(adrmemory)"), "{src}");
        assert!(src.contains("soutput(adrmemory, tempmemory)"), "{src}");
        // Trace conditions.
        assert!(src.contains("if land(opnmemory, 5) = 5 then"), "{src}");
        assert!(src.contains("if land(opnmemory, 9) = 8 then"), "{src}");
    }

    #[test]
    fn program_skeleton() {
        let src = emit("# p\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .");
        assert!(
            src.starts_with("program simulator (input, output);"),
            "{src}"
        );
        assert!(
            src.contains("function land (a, b: integer): integer;"),
            "{src}"
        );
        assert!(src.contains("procedure initvalues;"), "{src}");
        assert!(src.contains("while cyclecount <= cycles do begin"), "{src}");
        assert!(src.contains("write('Cycle ', cyclecount:3);"), "{src}");
        assert!(src.contains("write(' count= ', tempcount:1);"), "{src}");
        assert!(src.trim_end().ends_with("end."), "{src}");
    }

    #[test]
    fn eq_alu_renders_if_then_else() {
        let src = emit("# eq\ncmp m .\nA cmp 12 m 7\nM m 0 0 0 2 .");
        assert!(src.contains("if tempm = 7 then ljbcmp := 1"), "{src}");
        assert!(src.contains("else ljbcmp := 0;"), "{src}");
    }
}
