//! The VM execution loop.

use super::{Instr, Program};
use crate::lower::{lower_with_trace, OptOptions};
use rtl_core::{
    land, trace, AluFn, Design, Engine, InputSource, LaneTally, MemOp, ProfileHook, SimError,
    SimState, SimStats, Word, WORD_MASK,
};
use std::io::Write;

/// The bytecode virtual machine. Implements [`Engine`], so it is a drop-in
/// replacement for the interpreter — just faster.
///
/// ```
/// use rtl_core::{Design, Engine, run_captured};
/// use rtl_compile::Vm;
/// let design = Design::from_source(
///     "# counter\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
/// ).unwrap();
/// let mut vm = Vm::new(&design);
/// let text = run_captured(&mut vm, 2).unwrap();
/// assert_eq!(text, "Cycle   0 count= 0\nCycle   1 count= 1\n");
/// ```
#[derive(Debug)]
pub struct Vm<'d> {
    design: &'d Design,
    program: Program,
    state: SimState,
    regs: Vec<Word>,
    scratch: Vec<[Word; 3]>,
    stats: SimStats,
    tally: Option<Box<LaneTally>>,
}

impl<'d> Vm<'d> {
    /// Compiles with full optimization and trace output on.
    pub fn new(design: &'d Design) -> Self {
        Self::with_options(design, OptOptions::full(), true)
    }

    /// Compiles with explicit optimization and trace settings.
    pub fn with_options(design: &'d Design, options: OptOptions, trace: bool) -> Self {
        let program = super::compile_program(&lower_with_trace(design, options, trace));
        Self::with_program(design, program)
    }

    /// Runs a pre-compiled program.
    pub fn with_program(design: &'d Design, program: Program) -> Self {
        let regs = vec![0; program.reg_count()];
        let scratch = vec![[0; 3]; program.mems.len()];
        Vm {
            design,
            program,
            state: SimState::new(design),
            regs,
            scratch,
            stats: SimStats::new(design),
            tally: None,
        }
    }

    /// Attaches an execution-profile tap: when `hook` is collecting,
    /// every subsequent cycle tallies per-component output stores, value
    /// changes, selector arms, dynamic ALU dispatches and memory-cell
    /// accesses (flushed into the hook when the VM drops). Counts
    /// reflect the *optimized* program — a const-folded ALU records no
    /// `op/<name>` dispatch and an elided latch no `change` — so VM
    /// profiles describe what the VM actually executed, not the
    /// interpreter's schedule. A disabled hook leaves the hot path
    /// untouched.
    pub fn attach_profile(&mut self, hook: &ProfileHook) {
        if hook.enabled() {
            self.tally = Some(Box::new(LaneTally::new(
                hook.clone(),
                self.design.profile_meta(),
            )));
        }
    }

    /// Accumulated simulation statistics (§1.4): cycle count and memory
    /// accesses per memory.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The compiled program (for inspection / disassembly).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Resets to cycle 0 / initial values, clearing statistics.
    pub fn reset(&mut self) {
        self.state = SimState::new(self.design);
        self.stats = SimStats::new(self.design);
    }

    fn comp_id(&self, index: u32) -> rtl_core::CompId {
        self.design.id_at(index as usize)
    }

    fn exec(&mut self) -> Result<(), SimError> {
        let design = self.design;
        let Vm {
            program,
            state,
            regs,
            scratch,
            tally,
            ..
        } = self;
        let instrs = &program.instrs;
        let tables = &program.tables;
        let mut pc = 0usize;
        while pc < instrs.len() {
            match instrs[pc] {
                Instr::Const { dst, value } => regs[dst as usize] = value,
                Instr::Output { dst, comp } => {
                    regs[dst as usize] = state.outputs()[comp as usize];
                }
                Instr::Field {
                    dst,
                    src,
                    mask,
                    rshift,
                } => {
                    regs[dst as usize] = land(regs[src as usize], mask) >> rshift;
                }
                Instr::ShlImm { dst, src, amount } => {
                    regs[dst as usize] = regs[src as usize].wrapping_shl(u32::from(amount));
                }
                Instr::Add { dst, a, b } => {
                    regs[dst as usize] = regs[a as usize].wrapping_add(regs[b as usize]);
                }
                Instr::Sub { dst, a, b } => {
                    regs[dst as usize] = regs[a as usize].wrapping_sub(regs[b as usize]);
                }
                Instr::Mul { dst, a, b } => {
                    regs[dst as usize] = regs[a as usize].wrapping_mul(regs[b as usize]);
                }
                Instr::And { dst, a, b } => {
                    regs[dst as usize] = land(regs[a as usize], regs[b as usize]);
                }
                Instr::Or { dst, a, b } => {
                    let (x, y) = (regs[a as usize], regs[b as usize]);
                    regs[dst as usize] = x.wrapping_add(y).wrapping_sub(land(x, y));
                }
                Instr::Xor { dst, a, b } => {
                    let (x, y) = (regs[a as usize], regs[b as usize]);
                    regs[dst as usize] = x.wrapping_add(y).wrapping_sub(land(x, y).wrapping_mul(2));
                }
                Instr::Eq { dst, a, b } => {
                    regs[dst as usize] = Word::from(regs[a as usize] == regs[b as usize]);
                }
                Instr::Lt { dst, a, b } => {
                    regs[dst as usize] = Word::from(regs[a as usize] < regs[b as usize]);
                }
                Instr::ShlLoop { dst, a, b } => {
                    regs[dst as usize] = AluFn::Shl.apply(regs[a as usize], regs[b as usize]);
                }
                Instr::Not { dst, src } => {
                    regs[dst as usize] = WORD_MASK - regs[src as usize];
                }
                Instr::Dologic { dst, f, l, r, comp } => {
                    let fv = regs[f as usize];
                    let fun = AluFn::from_word(fv).ok_or_else(|| SimError::BadAluFunction {
                        component: design.name(design.id_at(comp as usize)).to_string(),
                        funct: fv,
                        cycle: state.cycle(),
                    })?;
                    if let Some(t) = tally.as_deref_mut() {
                        t.op(comp as usize, fun.number() as usize);
                    }
                    regs[dst as usize] = fun.apply(regs[l as usize], regs[r as usize]);
                }
                Instr::Store { comp, src } => {
                    let id = design.id_at(comp as usize);
                    let value = regs[src as usize];
                    if let Some(t) = tally.as_deref_mut() {
                        t.eval(comp as usize);
                        if state.outputs()[comp as usize] != value {
                            t.change(comp as usize);
                        }
                    }
                    state.set_output(id, value);
                }
                Instr::StoreScratch { mem, slot, src } => {
                    scratch[mem as usize][slot as usize] = regs[src as usize];
                }
                Instr::Switch {
                    src,
                    comp,
                    table,
                    len,
                } => {
                    let idx = regs[src as usize];
                    let slot = usize::try_from(idx)
                        .ok()
                        .filter(|&i| i < len as usize)
                        .ok_or_else(|| SimError::SelectorOutOfRange {
                            component: design.name(design.id_at(comp as usize)).to_string(),
                            index: idx,
                            cases: len as usize,
                            cycle: state.cycle(),
                        })?;
                    if let Some(t) = tally.as_deref_mut() {
                        t.arm(comp as usize, slot);
                    }
                    pc = tables[table as usize + slot] as usize;
                    continue;
                }
                Instr::Jump { target } => {
                    pc = target as usize;
                    continue;
                }
            }
            pc += 1;
        }
        Ok(())
    }
}

impl Engine for Vm<'_> {
    fn design(&self) -> &Design {
        self.design
    }

    fn state(&self) -> &SimState {
        &self.state
    }

    fn restore(&mut self, snapshot: &SimState) {
        self.state = snapshot.clone();
    }

    fn stats(&self) -> Option<&SimStats> {
        Some(&self.stats)
    }

    fn observes_output(&self, id: rtl_core::CompId) -> bool {
        // Latch elision (§5.4) stops maintaining dead memory latches; every
        // other component's output stays exact.
        self.program
            .mems
            .iter()
            .find(|m| m.comp as usize == id.index())
            .is_none_or(|m| m.latch_needed)
    }

    fn step(&mut self, out: &mut dyn Write, input: &mut dyn InputSource) -> Result<(), SimError> {
        let cycle = self.state.cycle();

        // 1 + 3. Combinational phase and memory capture (one program).
        self.exec()?;

        // 2. Trace phase. (The program captured memory state *after* this
        // point in the original's ordering, but captures are pure, so
        // running them early is unobservable.)
        if self.program.trace {
            trace::cycle_header(out, cycle)?;
            for &t in &self.program.traced {
                let id = self.comp_id(t);
                trace::traced_value(out, self.design.name(id), self.state.output(id))?;
            }
            trace::end_line(out)?;
        }

        // 4. Memory update phase.
        for mi in 0..self.program.mems.len() {
            let m = self.program.mems[mi].clone();
            let id = self.comp_id(m.comp);
            let [addr, dyn_opn, data] = self.scratch[mi];
            let opn = m.const_opn.unwrap_or(dyn_opn);
            let op = MemOp::from_word(opn);
            self.stats.record(id, op);
            let latch = match op {
                MemOp::Read => {
                    let a = check_addr(self.design.name(id), addr, m.size, cycle)?;
                    if m.latch_needed {
                        self.state.cell(id, a)
                    } else {
                        self.state.output(id)
                    }
                }
                MemOp::Write => {
                    let a = check_addr(self.design.name(id), addr, m.size, cycle)?;
                    debug_assert!(m.has_data);
                    self.state.set_cell(id, a, data);
                    data
                }
                MemOp::Input => {
                    let value = match addr {
                        0 => input.read_char(),
                        1 => input.read_int(),
                        _ => {
                            trace::input_prompt(out, addr)?;
                            input.read_int()
                        }
                    };
                    value.map_err(|e| match e {
                        SimError::InputExhausted { .. } => SimError::InputExhausted { cycle },
                        other => other,
                    })?
                }
                MemOp::Output => {
                    debug_assert!(m.has_data);
                    trace::output_event(out, addr, data)?;
                    data
                }
            };
            if let Some(t) = self.tally.as_deref_mut() {
                let ci = m.comp as usize;
                t.eval(ci);
                // Read/write addresses were validated by `check_addr`
                // above, so the cast is in range.
                match op {
                    MemOp::Read => t.read(ci, addr as usize),
                    MemOp::Write => t.write(ci, addr as usize),
                    MemOp::Input => t.input(ci),
                    MemOp::Output => t.output(ci),
                }
                if m.latch_needed && self.state.output(id) != latch {
                    t.change(ci);
                }
            }
            if m.latch_needed {
                self.state.set_output(id, latch);
            }
            if self.program.trace {
                use crate::ir::TraceDecision::*;
                let name = self.design.name(id);
                match m.trace_write {
                    Always => trace::mem_write(out, name, addr, latch)?,
                    Dynamic if rtl_core::word::traces_write(opn) => {
                        trace::mem_write(out, name, addr, latch)?;
                    }
                    _ => {}
                }
                match m.trace_read {
                    Always => trace::mem_read(out, name, addr, latch)?,
                    Dynamic if rtl_core::word::traces_read(opn) => {
                        trace::mem_read(out, name, addr, latch)?;
                    }
                    _ => {}
                }
            }
        }

        self.stats.cycles += 1;
        self.state.bump_cycle();
        Ok(())
    }
}

fn check_addr(name: &str, addr: Word, size: u32, cycle: Word) -> Result<u32, SimError> {
    if (0..Word::from(size)).contains(&addr) {
        Ok(addr as u32)
    } else {
        Err(SimError::AddressOutOfRange {
            component: name.to_string(),
            address: addr,
            size,
            cycle,
        })
    }
}
