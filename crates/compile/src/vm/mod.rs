//! The bytecode VM — ASIM II's "compiled" execution tier inside the
//! library.
//!
//! Where the interpreter re-walks postfix tables every cycle, the VM runs a
//! flat, register-based instruction stream produced from the optimized
//! [`CycleIr`](crate::ir::CycleIr): constant ALU functions are single opcodes, selectors are
//! jump tables, constant memory operations skip dispatch entirely. The
//! generated-Rust backend (see [`emit::rust`](crate::emit::rust)) is the
//! third tier; Figure 5.1 measures the spread between all of them.

mod compile;
mod run;

pub use compile::compile_program;
pub use run::Vm;

use crate::ir::TraceDecision;
use rtl_core::Word;

/// A virtual register index.
pub type Reg = u16;

/// One VM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `regs[dst] = value`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: Word,
    },
    /// `regs[dst] = outputs[comp]`.
    Output {
        /// Destination register.
        dst: Reg,
        /// Component index.
        comp: u32,
    },
    /// `regs[dst] = land(regs[src], mask) >> rshift`.
    Field {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// In-place mask.
        mask: Word,
        /// Subfield low bit.
        rshift: u8,
    },
    /// `regs[dst] = regs[src] << amount`.
    ShlImm {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Shift distance.
        amount: u8,
    },
    /// `regs[dst] = regs[a] + regs[b]` (wrapping).
    Add {
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// `regs[dst] = regs[a] - regs[b]` (wrapping).
    Sub {
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// `regs[dst] = regs[a] * regs[b]` (wrapping).
    Mul {
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// `regs[dst] = land(regs[a], regs[b])`.
    And {
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// Bitwise or via the `a + b - land(a, b)` identity.
    Or {
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// Bitwise xor via `a + b - 2*land(a, b)`.
    Xor {
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// `regs[dst] = (regs[a] == regs[b]) as Word`.
    Eq {
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// `regs[dst] = (regs[a] < regs[b]) as Word`.
    Lt {
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// The dologic function-6 iterated-doubling shift.
    ShlLoop {
        /// Destination register.
        dst: Reg,
        /// Value operand.
        a: Reg,
        /// Distance operand.
        b: Reg,
    },
    /// `regs[dst] = mask - regs[src]`.
    Not {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Generic ALU dispatch; errors when the function is out of range.
    Dologic {
        /// Destination register.
        dst: Reg,
        /// Function register.
        f: Reg,
        /// Left operand register.
        l: Reg,
        /// Right operand register.
        r: Reg,
        /// Component index (for the error message).
        comp: u32,
    },
    /// `outputs[comp] = regs[src]`.
    Store {
        /// Component index.
        comp: u32,
        /// Source register.
        src: Reg,
    },
    /// Saves a memory's captured address/operation/data for the update
    /// phase.
    StoreScratch {
        /// Memory index (position in the memory list).
        mem: u16,
        /// Which capture slot.
        slot: Slot,
        /// Source register.
        src: Reg,
    },
    /// Bounds-checked jump through `tables[table .. table+len]`.
    Switch {
        /// Index register.
        src: Reg,
        /// Selector component index (for the error message).
        comp: u32,
        /// Start of the jump table in the table pool.
        table: u32,
        /// Number of cases.
        len: u16,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: u32,
    },
}

/// Memory capture slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Captured address.
    Addr = 0,
    /// Captured operation.
    Opn = 1,
    /// Captured data.
    Data = 2,
}

/// Per-memory runtime metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRt {
    /// Component index.
    pub comp: u32,
    /// Cell count.
    pub size: u32,
    /// Constant operation, or `None` when captured dynamically.
    pub const_opn: Option<Word>,
    /// Whether the data slot is captured.
    pub has_data: bool,
    /// Whether the output latch is maintained.
    pub latch_needed: bool,
    /// Write-trace decision.
    pub trace_write: TraceDecision,
    /// Read-trace decision.
    pub trace_read: TraceDecision,
}

/// A compiled cycle program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) tables: Vec<u32>,
    pub(crate) reg_count: usize,
    pub(crate) mems: Vec<MemRt>,
    pub(crate) traced: Vec<u32>,
    pub(crate) trace: bool,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program is empty (a design with no components).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Registers required to run the program.
    pub fn reg_count(&self) -> usize {
        self.reg_count
    }

    /// A human-readable listing, for debugging and the CLI's `-v` output.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, ins) in self.instrs.iter().enumerate() {
            let _ = writeln!(out, "{i:4}: {ins:?}");
        }
        let _ = writeln!(out, "tables: {:?}", self.tables);
        let _ = writeln!(out, "regs: {}", self.reg_count);
        out
    }
}
