//! IR → bytecode translation.

use super::{Instr, MemRt, Program, Reg, Slot};
use crate::ir::{CycleIr, IrExpr, OpnPlan, Step};

/// Compiles a lowered cycle to a flat bytecode program.
pub fn compile_program(ir: &CycleIr) -> Program {
    let mut c = Compiler::default();

    for step in &ir.steps {
        match step {
            Step::Assign { id, expr } => {
                let r = c.emit_expr(expr);
                c.push(Instr::Store {
                    comp: id.index() as u32,
                    src: r,
                });
                c.reset_regs();
            }
            Step::Select { id, select, cases } => {
                let r = c.emit_expr(select);
                let switch_at = c.push_placeholder();
                // Compile each case; record entry points and patch a jump
                // to the continuation at the end of each.
                let mut entries = Vec::with_capacity(cases.len());
                let mut exits = Vec::with_capacity(cases.len());
                for case in cases {
                    entries.push(c.here());
                    let saved = c.next_reg;
                    let cr = c.emit_expr(case);
                    c.push(Instr::Store {
                        comp: id.index() as u32,
                        src: cr,
                    });
                    c.next_reg = saved;
                    exits.push(c.push_placeholder());
                }
                let after = c.here();
                let table = c.tables.len() as u32;
                c.tables.extend(entries);
                c.instrs[switch_at] = Instr::Switch {
                    src: r,
                    comp: id.index() as u32,
                    table,
                    len: cases.len() as u16,
                };
                for e in exits {
                    c.instrs[e] = Instr::Jump { target: after };
                }
                c.reset_regs();
            }
        }
    }

    // Memory captures.
    let mut mems = Vec::with_capacity(ir.mems.len());
    for (mi, m) in ir.mems.iter().enumerate() {
        let mem = mi as u16;
        let r = c.emit_expr(&m.addr);
        c.push(Instr::StoreScratch {
            mem,
            slot: Slot::Addr,
            src: r,
        });
        c.reset_regs();
        let const_opn = match &m.opn {
            OpnPlan::Const(op) => Some(*op),
            OpnPlan::Dynamic(e) => {
                let r = c.emit_expr(e);
                c.push(Instr::StoreScratch {
                    mem,
                    slot: Slot::Opn,
                    src: r,
                });
                c.reset_regs();
                None
            }
        };
        if let Some(data) = &m.data {
            let r = c.emit_expr(data);
            c.push(Instr::StoreScratch {
                mem,
                slot: Slot::Data,
                src: r,
            });
            c.reset_regs();
        }
        mems.push(MemRt {
            comp: m.id.index() as u32,
            size: m.size,
            const_opn,
            has_data: m.data.is_some(),
            latch_needed: m.latch_needed,
            trace_write: m.trace_write,
            trace_read: m.trace_read,
        });
    }

    Program {
        instrs: c.instrs,
        tables: c.tables,
        reg_count: c.max_reg.max(1),
        mems,
        traced: ir.traced.iter().map(|t| t.index() as u32).collect(),
        trace: ir.trace,
    }
}

#[derive(Default)]
struct Compiler {
    instrs: Vec<Instr>,
    tables: Vec<u32>,
    next_reg: usize,
    max_reg: usize,
}

impl Compiler {
    fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    fn push(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    fn push_placeholder(&mut self) -> usize {
        self.instrs.push(Instr::Jump { target: u32::MAX });
        self.instrs.len() - 1
    }

    fn alloc(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        assert!(r <= Reg::MAX as usize, "expression too deep for the VM");
        r as Reg
    }

    fn reset_regs(&mut self) {
        self.next_reg = 0;
    }

    fn emit_expr(&mut self, e: &IrExpr) -> Reg {
        match e {
            IrExpr::Const(v) => {
                let dst = self.alloc();
                self.push(Instr::Const { dst, value: *v });
                dst
            }
            IrExpr::Output(c) => {
                let dst = self.alloc();
                self.push(Instr::Output {
                    dst,
                    comp: c.index() as u32,
                });
                dst
            }
            IrExpr::Field {
                inner,
                mask,
                rshift,
            } => {
                let src = self.emit_expr(inner);
                let dst = self.alloc();
                self.push(Instr::Field {
                    dst,
                    src,
                    mask: *mask,
                    rshift: *rshift,
                });
                dst
            }
            IrExpr::Shl { inner, amount } => {
                let src = self.emit_expr(inner);
                let dst = self.alloc();
                self.push(Instr::ShlImm {
                    dst,
                    src,
                    amount: *amount,
                });
                dst
            }
            IrExpr::Sum(terms) => {
                let mut acc = self.emit_expr(&terms[0]);
                for t in &terms[1..] {
                    let r = self.emit_expr(t);
                    let dst = self.alloc();
                    self.push(Instr::Add { dst, a: acc, b: r });
                    acc = dst;
                }
                acc
            }
            IrExpr::Not(a) => {
                let src = self.emit_expr(a);
                let dst = self.alloc();
                self.push(Instr::Not { dst, src });
                dst
            }
            IrExpr::Add(a, b) => self.binary(a, b, |dst, a, b| Instr::Add { dst, a, b }),
            IrExpr::Sub(a, b) => self.binary(a, b, |dst, a, b| Instr::Sub { dst, a, b }),
            IrExpr::Mul(a, b) => self.binary(a, b, |dst, a, b| Instr::Mul { dst, a, b }),
            IrExpr::And(a, b) => self.binary(a, b, |dst, a, b| Instr::And { dst, a, b }),
            IrExpr::Or(a, b) => self.binary(a, b, |dst, a, b| Instr::Or { dst, a, b }),
            IrExpr::Xor(a, b) => self.binary(a, b, |dst, a, b| Instr::Xor { dst, a, b }),
            IrExpr::Eq(a, b) => self.binary(a, b, |dst, a, b| Instr::Eq { dst, a, b }),
            IrExpr::Lt(a, b) => self.binary(a, b, |dst, a, b| Instr::Lt { dst, a, b }),
            IrExpr::ShlLoop(a, b) => self.binary(a, b, |dst, a, b| Instr::ShlLoop { dst, a, b }),
            IrExpr::Dologic {
                funct,
                left,
                right,
                comp,
            } => {
                let f = self.emit_expr(funct);
                let l = self.emit_expr(left);
                let r = self.emit_expr(right);
                let dst = self.alloc();
                self.push(Instr::Dologic {
                    dst,
                    f,
                    l,
                    r,
                    comp: comp.index() as u32,
                });
                dst
            }
        }
    }

    fn binary(&mut self, a: &IrExpr, b: &IrExpr, ctor: fn(Reg, Reg, Reg) -> Instr) -> Reg {
        let ra = self.emit_expr(a);
        let rb = self.emit_expr(b);
        let dst = self.alloc();
        self.push(ctor(dst, ra, rb));
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, OptOptions};
    use rtl_core::Design;

    #[test]
    fn straight_line_for_alus() {
        let d = Design::from_source("# p\na b .\nA a 4 1 2\nA b 4 a 3 .").unwrap();
        let p = compile_program(&lower(&d, OptOptions::none()));
        assert!(!p.is_empty());
        assert!(p.tables.is_empty(), "no selectors, no tables");
        assert!(!p.disassemble().is_empty());
    }

    #[test]
    fn selector_builds_jump_table() {
        let d = Design::from_source("# p\ns m .\nS s m.0.1 1 2 3 4\nM m 0 0 0 2 .").unwrap();
        let p = compile_program(&lower(&d, OptOptions::full()));
        assert_eq!(p.tables.len(), 4);
        let switches = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Switch { .. }))
            .count();
        assert_eq!(switches, 1);
        // All placeholder jumps were patched.
        for i in &p.instrs {
            if let Instr::Jump { target } = i {
                assert_ne!(*target, u32::MAX, "unpatched jump");
            }
        }
    }

    #[test]
    fn full_optimization_produces_fewer_instructions() {
        let src = "# p\nalu add m .\nA alu 4 m 3048\nA add 4 m 3048\nM m 0 alu 1 4 .";
        let d = Design::from_source(src).unwrap();
        let full = compile_program(&lower(&d, OptOptions::full()));
        let naive = compile_program(&lower(&d, OptOptions::none()));
        assert!(
            full.len() < naive.len(),
            "full {} < naive {}",
            full.len(),
            naive.len()
        );
    }
}
