//! [`EngineFactory`] registrations for the compiled tiers.
//!
//! * [`VmFactory`] — the bytecode VM, with (`vm`) and without
//!   (`vm-noopt`) the §4.4/§5.4 optimization passes. Stepped lanes.
//! * [`GeneratedRustFactory`] — the *generated simulator binary* as a
//!   co-simulation lane (`rust`): the specification is compiled to a
//!   standalone Rust program, built with `rustc -O`, and run as a
//!   subprocess. The binary cannot be stepped, so it joins as a
//!   [`StreamEngine`]: its stdout stream is compared byte-for-byte
//!   against the trace the stepped lanes agreed on.

use crate::emit::EmitOptions;
use crate::lower::OptOptions;
use crate::rustc::BinaryCache;
use crate::vm::Vm;
use rtl_core::{Design, EngineFactory, EngineLane, EngineOptions, StreamEngine, Word};
use std::sync::Arc;

/// Builds bytecode-VM lanes: `vm` (full optimization) and `vm-noopt`
/// (every pass disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmFactory {
    optimized: bool,
}

impl VmFactory {
    /// Full optimization (`vm`).
    pub fn full() -> Self {
        VmFactory { optimized: true }
    }

    /// Every optimization pass disabled (`vm-noopt`).
    pub fn no_opt() -> Self {
        VmFactory { optimized: false }
    }
}

impl EngineFactory for VmFactory {
    fn name(&self) -> &str {
        if self.optimized {
            "vm"
        } else {
            "vm-noopt"
        }
    }

    fn description(&self) -> &str {
        if self.optimized {
            "ASIM II bytecode VM, full optimization"
        } else {
            "ASIM II bytecode VM, optimization passes disabled"
        }
    }

    fn build<'d>(
        &self,
        design: &'d Design,
        options: &EngineOptions,
    ) -> Result<EngineLane<'d>, String> {
        let opt = if self.optimized {
            OptOptions::full()
        } else {
            OptOptions::none()
        };
        let mut vm = Vm::with_options(design, opt, options.trace);
        vm.attach_profile(&options.profile);
        Ok(EngineLane::Stepped(Box::new(vm)))
    }
}

/// Builds the generated-Rust subprocess lane (`rust`): spec → Rust source
/// → `rustc -O` → run the binary with the stimulus on stdin, capture
/// stdout. Fails to build when `rustc` is not on the `PATH`.
///
/// By default every run invokes `rustc` afresh. Give the factory a
/// [`BinaryCache`] ([`cached`](GeneratedRustFactory::cached)) and the
/// compiled binary is reused per design — across the cases of one process
/// and, when the cache has a directory, across processes. Cached binaries
/// take their cycle bound from the `ASIM2_CYCLES` environment variable
/// (see [`EmitOptions::cycles_from_env`]), so one binary serves any
/// horizon.
#[derive(Debug, Clone, Default)]
pub struct GeneratedRustFactory {
    cache: Option<Arc<BinaryCache>>,
}

impl GeneratedRustFactory {
    /// A factory with a shared compiled-binary cache.
    pub fn cached(cache: Arc<BinaryCache>) -> Self {
        GeneratedRustFactory { cache: Some(cache) }
    }
}

impl EngineFactory for GeneratedRustFactory {
    fn name(&self) -> &str {
        "rust"
    }

    fn description(&self) -> &str {
        "generated Rust simulator binary (subprocess, stream-compared)"
    }

    fn is_stepped(&self) -> bool {
        false
    }

    fn build<'d>(
        &self,
        design: &'d Design,
        options: &EngineOptions,
    ) -> Result<EngineLane<'d>, String> {
        if !crate::rustc::rustc_available() {
            return Err("engine \"rust\" needs rustc on the PATH".into());
        }
        Ok(EngineLane::Stream(Box::new(GeneratedRustStream {
            design,
            trace: options.trace,
            cache: self.cache.clone(),
        })))
    }
}

struct GeneratedRustStream<'d> {
    design: &'d Design,
    trace: bool,
    cache: Option<Arc<BinaryCache>>,
}

impl StreamEngine for GeneratedRustStream<'_> {
    fn run_stream(&mut self, cycles: u64, stimulus: &[Word]) -> Result<Vec<u8>, String> {
        if cycles == 0 {
            return Ok(Vec::new());
        }
        // The generated main loop is `while cyclecount <= cycles`, so a
        // baked-in bound of n runs n + 1 cycles; `cycles` steps means a
        // bound of cycles - 1.
        let bound = i64::try_from(cycles - 1).map_err(|_| "cycle bound too large".to_string())?;
        let stdin = render_stimulus(stimulus);
        let stdout = match &self.cache {
            Some(cache) => {
                // The cached binary's source must not depend on the cycle
                // bound, so the bound travels in the environment instead.
                let options = EmitOptions {
                    cycles: Some(0),
                    cycles_from_env: true,
                    trace: self.trace,
                    ..EmitOptions::default()
                };
                let sim = cache
                    .get(self.design, &options)
                    .map_err(|e| e.to_string())?;
                let env = [("ASIM2_CYCLES", bound.to_string())];
                let (stdout, _) = sim
                    .run_env(stdin.as_bytes(), &env)
                    .map_err(|e| e.to_string())?;
                stdout
            }
            None => {
                let options = EmitOptions {
                    cycles: Some(bound),
                    trace: self.trace,
                    ..EmitOptions::default()
                };
                let sim = crate::rustc::build(self.design, &options).map_err(|e| e.to_string())?;
                let (stdout, _) = sim.run(stdin.as_bytes()).map_err(|e| e.to_string())?;
                stdout
            }
        };
        Ok(stdout.into_bytes())
    }
}

/// Renders a scripted word stimulus as the byte stream the generated
/// program's `read_int` expects: one whitespace-delimited decimal per
/// word. (The scenario corpus and the fuzz generator only use integer
/// input — address-0 character reads would need a byte-exact script.)
fn render_stimulus(words: &[Word]) -> String {
    let mut s = String::new();
    for w in words {
        s.push_str(&w.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::{Session, Until};

    const COUNTER: &str = "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .";

    #[test]
    fn vm_tiers_build_and_step() {
        let design = Design::from_source(COUNTER).unwrap();
        for factory in [VmFactory::full(), VmFactory::no_opt()] {
            let lane = factory.build(&design, &EngineOptions::default()).unwrap();
            let EngineLane::Stepped(engine) = lane else {
                panic!("vm lanes are stepped");
            };
            let mut session = Session::over(engine).capture().build();
            assert!(session.run(Until::Cycles(2)).completed(), "{factory:?}");
            assert!(session.output_text().contains("count= 1"));
        }
        assert_eq!(VmFactory::full().name(), "vm");
        assert_eq!(VmFactory::no_opt().name(), "vm-noopt");
    }

    #[test]
    fn stimulus_rendering_is_one_decimal_per_line() {
        assert_eq!(render_stimulus(&[1, -7, 300]), "1\n-7\n300\n");
        assert_eq!(render_stimulus(&[]), "");
    }

    #[test]
    fn rust_lane_matches_the_vm_stream() {
        if !crate::rustc::rustc_available() {
            eprintln!("skipping: rustc not on PATH");
            return;
        }
        let design = Design::from_source(COUNTER).unwrap();
        let lane = GeneratedRustFactory::default()
            .build(&design, &EngineOptions::default())
            .unwrap();
        let EngineLane::Stream(mut stream) = lane else {
            panic!("rust lane is a stream");
        };
        let got = stream.run_stream(5, &[]).unwrap();

        let mut vm = Vm::new(&design);
        let mut session = Session::over(&mut vm).capture().build();
        assert!(session.run(Until::Cycles(5)).completed());
        assert_eq!(got, session.output(), "stream must match the VM trace");
    }

    #[test]
    fn cached_rust_lane_compiles_once_and_matches_across_horizons() {
        if !crate::rustc::rustc_available() {
            eprintln!("skipping: rustc not on PATH");
            return;
        }
        let design = Design::from_source(COUNTER).unwrap();
        let cache = Arc::new(BinaryCache::in_memory());
        let factory = GeneratedRustFactory::cached(Arc::clone(&cache));

        let run = |cycles: u64| {
            let lane = factory.build(&design, &EngineOptions::default()).unwrap();
            let EngineLane::Stream(mut stream) = lane else {
                panic!("rust lane is a stream");
            };
            stream.run_stream(cycles, &[]).unwrap()
        };
        let short = run(3);
        let long = run(7);
        assert_eq!(cache.stats(), (1, 1), "one rustc invocation, one reuse");

        // The env-var-bounded binary must produce the same bytes as the
        // bake-the-bound pipeline (and therefore the stepped engines).
        for (cycles, got) in [(3, &short), (7, &long)] {
            let mut vm = Vm::new(&design);
            let mut session = Session::over(&mut vm).capture().build();
            assert!(session.run(Until::Cycles(cycles)).completed());
            assert_eq!(got.as_slice(), session.output(), "{cycles} cycles");
        }
    }

    #[test]
    fn disk_cache_is_reused_across_cache_instances() {
        if !crate::rustc::rustc_available() {
            eprintln!("skipping: rustc not on PATH");
            return;
        }
        let dir = std::env::temp_dir().join(format!("asim2-bincache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let design = Design::from_source(COUNTER).unwrap();
        let options = EmitOptions {
            cycles: Some(0),
            cycles_from_env: true,
            ..EmitOptions::default()
        };

        let first = BinaryCache::at_dir(&dir);
        let sim = first.get(&design, &options).unwrap();
        assert!(sim.timings.compile > std::time::Duration::ZERO);

        // A fresh cache (think: the resumed campaign's next process) finds
        // the published binary and skips rustc entirely.
        let second = BinaryCache::at_dir(&dir);
        let reused = second.get(&design, &options).unwrap();
        assert_eq!(reused.timings.compile, std::time::Duration::ZERO);
        assert_eq!(
            reused
                .run_env(b"", &[("ASIM2_CYCLES", "2".into())])
                .unwrap()
                .0,
            sim.run_env(b"", &[("ASIM2_CYCLES", "2".into())]).unwrap().0,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
