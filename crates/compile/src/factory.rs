//! [`EngineFactory`] registrations for the compiled tiers.
//!
//! * [`VmFactory`] — the bytecode VM, with (`vm`) and without
//!   (`vm-noopt`) the §4.4/§5.4 optimization passes. Stepped lanes.
//! * [`GeneratedRustFactory`] — the *generated simulator binary* as a
//!   co-simulation lane (`rust`): the specification is compiled to a
//!   standalone Rust program, built with `rustc -O`, and run as a
//!   subprocess. The binary cannot be stepped, so it joins as a
//!   [`StreamEngine`]: its stdout stream is compared byte-for-byte
//!   against the trace the stepped lanes agreed on.

use crate::emit::EmitOptions;
use crate::lower::OptOptions;
use crate::vm::Vm;
use rtl_core::{Design, EngineFactory, EngineLane, EngineOptions, StreamEngine, Word};

/// Builds bytecode-VM lanes: `vm` (full optimization) and `vm-noopt`
/// (every pass disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmFactory {
    optimized: bool,
}

impl VmFactory {
    /// Full optimization (`vm`).
    pub fn full() -> Self {
        VmFactory { optimized: true }
    }

    /// Every optimization pass disabled (`vm-noopt`).
    pub fn no_opt() -> Self {
        VmFactory { optimized: false }
    }
}

impl EngineFactory for VmFactory {
    fn name(&self) -> &str {
        if self.optimized {
            "vm"
        } else {
            "vm-noopt"
        }
    }

    fn description(&self) -> &str {
        if self.optimized {
            "ASIM II bytecode VM, full optimization"
        } else {
            "ASIM II bytecode VM, optimization passes disabled"
        }
    }

    fn build<'d>(
        &self,
        design: &'d Design,
        options: &EngineOptions,
    ) -> Result<EngineLane<'d>, String> {
        let opt = if self.optimized {
            OptOptions::full()
        } else {
            OptOptions::none()
        };
        Ok(EngineLane::Stepped(Box::new(Vm::with_options(
            design,
            opt,
            options.trace,
        ))))
    }
}

/// Builds the generated-Rust subprocess lane (`rust`): spec → Rust source
/// → `rustc -O` → run the binary with the stimulus on stdin, capture
/// stdout. Fails to build when `rustc` is not on the `PATH`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeneratedRustFactory;

impl EngineFactory for GeneratedRustFactory {
    fn name(&self) -> &str {
        "rust"
    }

    fn description(&self) -> &str {
        "generated Rust simulator binary (subprocess, stream-compared)"
    }

    fn is_stepped(&self) -> bool {
        false
    }

    fn build<'d>(
        &self,
        design: &'d Design,
        options: &EngineOptions,
    ) -> Result<EngineLane<'d>, String> {
        if !crate::rustc::rustc_available() {
            return Err("engine \"rust\" needs rustc on the PATH".into());
        }
        Ok(EngineLane::Stream(Box::new(GeneratedRustStream {
            design,
            trace: options.trace,
        })))
    }
}

struct GeneratedRustStream<'d> {
    design: &'d Design,
    trace: bool,
}

impl StreamEngine for GeneratedRustStream<'_> {
    fn run_stream(&mut self, cycles: u64, stimulus: &[Word]) -> Result<Vec<u8>, String> {
        if cycles == 0 {
            return Ok(Vec::new());
        }
        // The generated main loop is `while cyclecount <= cycles`, so a
        // baked-in bound of n runs n + 1 cycles; `cycles` steps means a
        // bound of cycles - 1.
        let bound = i64::try_from(cycles - 1).map_err(|_| "cycle bound too large".to_string())?;
        let options = EmitOptions {
            cycles: Some(bound),
            trace: self.trace,
            ..EmitOptions::default()
        };
        let sim = crate::rustc::build(self.design, &options).map_err(|e| e.to_string())?;
        let stdin = render_stimulus(stimulus);
        let (stdout, _) = sim.run(stdin.as_bytes()).map_err(|e| e.to_string())?;
        Ok(stdout.into_bytes())
    }
}

/// Renders a scripted word stimulus as the byte stream the generated
/// program's `read_int` expects: one whitespace-delimited decimal per
/// word. (The scenario corpus and the fuzz generator only use integer
/// input — address-0 character reads would need a byte-exact script.)
fn render_stimulus(words: &[Word]) -> String {
    let mut s = String::new();
    for w in words {
        s.push_str(&w.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::{Session, Until};

    const COUNTER: &str = "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .";

    #[test]
    fn vm_tiers_build_and_step() {
        let design = Design::from_source(COUNTER).unwrap();
        for factory in [VmFactory::full(), VmFactory::no_opt()] {
            let lane = factory.build(&design, &EngineOptions::default()).unwrap();
            let EngineLane::Stepped(engine) = lane else {
                panic!("vm lanes are stepped");
            };
            let mut session = Session::over(engine).capture().build();
            assert!(session.run(Until::Cycles(2)).completed(), "{factory:?}");
            assert!(session.output_text().contains("count= 1"));
        }
        assert_eq!(VmFactory::full().name(), "vm");
        assert_eq!(VmFactory::no_opt().name(), "vm-noopt");
    }

    #[test]
    fn stimulus_rendering_is_one_decimal_per_line() {
        assert_eq!(render_stimulus(&[1, -7, 300]), "1\n-7\n300\n");
        assert_eq!(render_stimulus(&[]), "");
    }

    #[test]
    fn rust_lane_matches_the_vm_stream() {
        if !crate::rustc::rustc_available() {
            eprintln!("skipping: rustc not on PATH");
            return;
        }
        let design = Design::from_source(COUNTER).unwrap();
        let lane = GeneratedRustFactory
            .build(&design, &EngineOptions::default())
            .unwrap();
        let EngineLane::Stream(mut stream) = lane else {
            panic!("rust lane is a stream");
        };
        let got = stream.run_stream(5, &[]).unwrap();

        let mut vm = Vm::new(&design);
        let mut session = Session::over(&mut vm).capture().build();
        assert!(session.run(Until::Cycles(5)).completed());
        assert_eq!(got, session.output(), "stream must match the VM trace");
    }
}
