//! Lowering a [`Design`] to [`CycleIr`], with the thesis's optimizations
//! applied as independent, ablatable passes.

use crate::ir::{CycleIr, IrExpr, MemPlan, OpnPlan, Step, TraceDecision};
use rtl_core::{AluFn, Design, RKind, Word};

/// Optimization switches, each corresponding to a design choice the thesis
/// discusses. [`OptOptions::full`] is what ASIM II shipped with (plus the
/// §5.4 future-work latch elision); [`OptOptions::none`] approximates a
/// naive code generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptOptions {
    /// §4.4: "If the function is a constant, code is generated which
    /// performs the function inline, rather than call the procedure."
    pub inline_const_alu: bool,
    /// §4.4: "if the memory operation is a constant, the case structure is
    /// eliminated and only the appropriate action is performed."
    pub inline_const_memop: bool,
    /// Constant folding over the lowered IR (subsumes the original's
    /// pre-shifted constant concatenation parts).
    pub fold_constants: bool,
    /// §5.4 future work: "heuristics to determine which memories do not
    /// need temporary variables in which to store results."
    pub elide_dead_latches: bool,
}

impl OptOptions {
    /// Everything on — the default.
    pub const fn full() -> Self {
        OptOptions {
            inline_const_alu: true,
            inline_const_memop: true,
            fold_constants: true,
            elide_dead_latches: true,
        }
    }

    /// Everything off — a naive translator.
    pub const fn none() -> Self {
        OptOptions {
            inline_const_alu: false,
            inline_const_memop: false,
            fold_constants: false,
            elide_dead_latches: false,
        }
    }
}

impl Default for OptOptions {
    fn default() -> Self {
        Self::full()
    }
}

/// Lowers a design to cycle IR with the given optimizations. Trace output
/// is on (matching the original simulators); backends and the VM can be
/// configured separately.
pub fn lower(design: &Design, options: OptOptions) -> CycleIr {
    let maybe_fold = |e: IrExpr| if options.fold_constants { e.fold() } else { e };

    // Combinational steps in dependency order.
    let mut steps = Vec::with_capacity(design.comb_order().len());
    for &id in design.comb_order() {
        match &design.comp(id).kind {
            RKind::Alu(a) => {
                let funct = IrExpr::from_rexpr(&a.funct);
                let left = maybe_fold(IrExpr::from_rexpr(&a.left));
                let right = maybe_fold(IrExpr::from_rexpr(&a.right));
                let expr = match (options.inline_const_alu, a.funct.as_constant()) {
                    (true, Some(f)) => match AluFn::from_word(f) {
                        Some(f) => maybe_fold(IrExpr::apply_fn(f, left, right)),
                        // A constant-but-invalid function: keep the dynamic
                        // dispatch so the runtime error still fires.
                        None => IrExpr::Dologic {
                            funct: Box::new(IrExpr::Const(f)),
                            left: Box::new(left),
                            right: Box::new(right),
                            comp: id,
                        },
                    },
                    _ => IrExpr::Dologic {
                        funct: Box::new(maybe_fold(funct)),
                        left: Box::new(left),
                        right: Box::new(right),
                        comp: id,
                    },
                };
                steps.push(Step::Assign { id, expr });
            }
            RKind::Selector(s) => {
                let select = maybe_fold(IrExpr::from_rexpr(&s.select));
                let cases = s
                    .cases
                    .iter()
                    .map(|c| maybe_fold(IrExpr::from_rexpr(c)))
                    .collect();
                steps.push(Step::Select { id, select, cases });
            }
            RKind::Memory(_) => unreachable!("memories are not combinational"),
        }
    }

    // Which memory latches are actually observable?
    let latch_used: Vec<bool> = latch_usage(design);

    let mut mems = Vec::with_capacity(design.memories().len());
    for &id in design.memories() {
        let m = design.memory(id);
        let addr = maybe_fold(IrExpr::from_rexpr(&m.addr));
        let data_ir = maybe_fold(IrExpr::from_rexpr(&m.data));

        let (opn, trace_write, trace_read, data) =
            match (options.inline_const_memop, m.opn.as_constant()) {
                (true, Some(op)) => {
                    let tw = decide(rtl_core::word::traces_write(op));
                    let tr = decide(rtl_core::word::traces_read(op));
                    // Reads and inputs never evaluate the data expression.
                    let needs_data = matches!(rtl_core::land(op, 3), 1 | 3);
                    (OpnPlan::Const(op), tw, tr, needs_data.then_some(data_ir))
                }
                _ => {
                    // Dynamic operation: the original only emitted trace
                    // checks when the operation expression was wide enough
                    // to reach the trace bits (`numberofbits`).
                    let w = m.opn.width;
                    let tw = if w >= 3 {
                        TraceDecision::Dynamic
                    } else {
                        TraceDecision::Never
                    };
                    let tr = if w >= 4 {
                        TraceDecision::Dynamic
                    } else {
                        TraceDecision::Never
                    };
                    (
                        OpnPlan::Dynamic(maybe_fold(IrExpr::from_rexpr(&m.opn))),
                        tw,
                        tr,
                        Some(data_ir),
                    )
                }
            };

        let traced_here = design.traced().contains(&id);
        let latch_needed = if options.elide_dead_latches {
            latch_used[id.index()]
                || traced_here
                || trace_write != TraceDecision::Never
                || trace_read != TraceDecision::Never
        } else {
            true
        };

        mems.push(MemPlan {
            id,
            size: m.size,
            addr,
            opn,
            data,
            latch_needed,
            trace_write,
            trace_read,
        });
    }

    CycleIr {
        steps,
        mems,
        traced: design.traced().to_vec(),
        trace: true,
    }
}

fn decide(cond: bool) -> TraceDecision {
    if cond {
        TraceDecision::Always
    } else {
        TraceDecision::Never
    }
}

/// `true` at index `i` if any expression anywhere in the design reads
/// component `i`'s output. For memories that means the latch is observable.
fn latch_usage(design: &Design) -> Vec<bool> {
    let mut used = vec![false; design.len()];
    for (_, comp) in design.iter() {
        for expr in comp.kind.expressions() {
            for c in expr.comps() {
                used[c.index()] = true;
            }
        }
    }
    used
}

/// Lowers with a specific trace setting.
pub fn lower_with_trace(design: &Design, options: OptOptions, trace: bool) -> CycleIr {
    let mut ir = lower(design, options);
    ir.trace = trace;
    ir
}

/// Compile-time statistics, for the `asim compile -v` report and the
/// optimization tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerStats {
    /// Total IR nodes.
    pub nodes: usize,
    /// ALUs compiled to a generic `dologic` dispatch.
    pub generic_alus: usize,
    /// Memories with constant-specialized operations.
    pub const_memops: usize,
    /// Memories whose latch maintenance was elided.
    pub elided_latches: usize,
}

/// Computes statistics for a lowered cycle.
pub fn stats(ir: &CycleIr) -> LowerStats {
    fn count_dologic(e: &IrExpr) -> usize {
        use IrExpr::*;
        match e {
            Dologic {
                funct, left, right, ..
            } => 1 + count_dologic(funct) + count_dologic(left) + count_dologic(right),
            Const(_) | Output(_) => 0,
            Field { inner, .. } | Shl { inner, .. } | Not(inner) => count_dologic(inner),
            Sum(ts) => ts.iter().map(count_dologic).sum(),
            Add(a, b)
            | Sub(a, b)
            | ShlLoop(a, b)
            | Mul(a, b)
            | And(a, b)
            | Or(a, b)
            | Xor(a, b)
            | Eq(a, b)
            | Lt(a, b) => count_dologic(a) + count_dologic(b),
        }
    }
    let generic_alus = ir
        .steps
        .iter()
        .map(|s| match s {
            Step::Assign { expr, .. } => count_dologic(expr),
            Step::Select { select, cases, .. } => {
                count_dologic(select) + cases.iter().map(count_dologic).sum::<usize>()
            }
        })
        .sum();
    LowerStats {
        nodes: ir.node_count(),
        generic_alus,
        const_memops: ir
            .mems
            .iter()
            .filter(|m| matches!(m.opn, OpnPlan::Const(_)))
            .count(),
        elided_latches: ir.mems.iter().filter(|m| !m.latch_needed).count(),
    }
}

/// Convenience: is this constant a valid operation word for `op & 3`?
pub fn const_mem_op(op: Word) -> Word {
    rtl_core::land(op, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::Design;

    fn d(src: &str) -> Design {
        Design::from_source(src).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn figure_4_1_inlining() {
        // `A add 4 left 3048` becomes an inline Add; `A alu compute left
        // 3048` stays a dologic call.
        let design = d("# fig41\nalu add compute left .\n\
             A alu compute left 3048\nA add 4 left 3048\n\
             A compute 0 0 0\nM left 0 0 0 1 .");
        let ir = lower(&design, OptOptions::full());
        let s = stats(&ir);
        assert_eq!(s.generic_alus, 1, "only `alu` needs dologic");

        let naive = lower(&design, OptOptions::none());
        // Without inlining every ALU is a dologic (alu, add, compute).
        assert_eq!(stats(&naive).generic_alus, 3);
    }

    #[test]
    fn const_memop_specialization() {
        let design = d("# m\nm c n .\nM c 0 n 1 1\nA n 4 c 1\nM m c c c 4 .");
        let ir = lower(&design, OptOptions::full());
        // `c` has constant op 1; `m` has dynamic op.
        assert_eq!(stats(&ir).const_memops, 1);
        let naive = lower(&design, OptOptions::none());
        assert_eq!(stats(&naive).const_memops, 0);
    }

    #[test]
    fn read_op_drops_data_expression() {
        let design = d("# m\nrom c n .\nM c 0 n 1 1\nA n 4 c 1\nM rom c 0 0 8 .");
        let ir = lower(&design, OptOptions::full());
        let rom = &ir.mems[1];
        assert!(matches!(rom.opn, OpnPlan::Const(0)));
        assert_eq!(rom.data, None, "reads never evaluate data");
    }

    #[test]
    fn latch_elision_is_conservative() {
        // `sink` is written but never read nor traced: latch elided.
        // `c` feeds `n`: latch kept.
        let design = d("# m\nc n sink .\nM c 0 n 1 1\nA n 4 c 1\nM sink 0 n 1 1 .");
        let ir = lower(&design, OptOptions::full());
        assert_eq!(stats(&ir).elided_latches, 1);
        assert!(ir.mems[0].latch_needed, "c is read by n");
        assert!(!ir.mems[1].latch_needed, "sink is write-only");

        // Tracing the sink forces the latch back.
        let design = d("# m\nc n sink* .\nM c 0 n 1 1\nA n 4 c 1\nM sink 0 n 1 1 .");
        let ir = lower(&design, OptOptions::full());
        assert_eq!(stats(&ir).elided_latches, 0);
    }

    #[test]
    fn narrow_dynamic_opn_never_traces() {
        // opn = c.0 (1 bit): can never set trace bits.
        let design = d("# m\nm c n .\nM c 0 n 1 1\nA n 4 c 1\nM m 0 c c.0 1 .");
        let ir = lower(&design, OptOptions::full());
        let m = &ir.mems[1];
        assert_eq!(m.trace_write, TraceDecision::Never);
        assert_eq!(m.trace_read, TraceDecision::Never);

        // opn = c.0.3 (4 bits): both dynamic.
        let design = d("# m\nm c n .\nM c 0 n 1 1\nA n 4 c 1\nM m 0 c c.0.3 1 .");
        let ir = lower(&design, OptOptions::full());
        let m = &ir.mems[1];
        assert_eq!(m.trace_write, TraceDecision::Dynamic);
        assert_eq!(m.trace_read, TraceDecision::Dynamic);
    }

    #[test]
    fn const_trace_bits_decide_statically() {
        let design = d("# m\nm c n .\nM c 0 n 1 1\nA n 4 c 1\nM m 0 c 5 1 .");
        let ir = lower(&design, OptOptions::full());
        let m = &ir.mems[1];
        assert_eq!(m.trace_write, TraceDecision::Always);
        assert_eq!(m.trace_read, TraceDecision::Never);
    }

    #[test]
    fn invalid_const_funct_stays_dynamic_for_the_error() {
        let design = d("# m\na .\nA a 14 0 0 .");
        let ir = lower(&design, OptOptions::full());
        assert_eq!(stats(&ir).generic_alus, 1);
    }

    #[test]
    fn folding_reduces_nodes() {
        let design = d("# m\na b .\nA a 4 %110,1.2 3\nA b 4 a 1 .");
        let full = lower(&design, OptOptions::full());
        let naive = lower(&design, OptOptions::none());
        assert!(full.node_count() < naive.node_count());
        // a = (6<<2 | 1) + 3 = 28 folded to a constant.
        match &full.steps[0] {
            Step::Assign { expr, .. } => assert_eq!(expr.as_const(), Some(28)),
            other => panic!("{other:?}"),
        }
    }
}
