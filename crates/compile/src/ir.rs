//! The compiler's intermediate representation.
//!
//! ASIM II's code generator specialized aggressively: a constant ALU
//! function became an inline operator instead of a `dologic` call, and a
//! constant memory operation collapsed the four-way `case` to a single arm
//! (§4.4). The IR makes those decisions explicit and testable; the bytecode
//! VM and both source backends consume it.

use rtl_core::{AluFn, CompId, RExpr, RefMode, Word, WORD_MASK};

/// A pure expression over component outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrExpr {
    /// A literal value.
    Const(Word),
    /// A component's visible output (combinational value or memory latch).
    Output(CompId),
    /// `(land(inner, mask)) >> rshift` — a bit subfield in place.
    Field {
        /// Operand.
        inner: Box<IrExpr>,
        /// In-place mask.
        mask: Word,
        /// Low bit of the subfield.
        rshift: u8,
    },
    /// `inner << amount` — concatenation placement.
    Shl {
        /// Operand.
        inner: Box<IrExpr>,
        /// Shift distance.
        amount: u8,
    },
    /// Wrapping sum of the terms (concatenation assembly).
    Sum(Vec<IrExpr>),
    /// `mask - x` (ALU function 3).
    Not(Box<IrExpr>),
    /// `a + b` (function 4).
    Add(Box<IrExpr>, Box<IrExpr>),
    /// `a - b` (function 5).
    Sub(Box<IrExpr>, Box<IrExpr>),
    /// The iterated-doubling shift of function 6 (dynamic distance).
    ShlLoop(Box<IrExpr>, Box<IrExpr>),
    /// `a * b` (function 7).
    Mul(Box<IrExpr>, Box<IrExpr>),
    /// `land(a, b)` (function 8).
    And(Box<IrExpr>, Box<IrExpr>),
    /// Bitwise or (function 9).
    Or(Box<IrExpr>, Box<IrExpr>),
    /// Bitwise xor (function 10).
    Xor(Box<IrExpr>, Box<IrExpr>),
    /// `1` if equal (function 12).
    Eq(Box<IrExpr>, Box<IrExpr>),
    /// `1` if less (function 13).
    Lt(Box<IrExpr>, Box<IrExpr>),
    /// Full dynamic dispatch — the generic `dologic` procedure call the
    /// optimizer tries to avoid. `comp` names the ALU for runtime errors.
    Dologic {
        /// Function expression.
        funct: Box<IrExpr>,
        /// Left operand.
        left: Box<IrExpr>,
        /// Right operand.
        right: Box<IrExpr>,
        /// The ALU component (for error reporting).
        comp: CompId,
    },
}

impl IrExpr {
    /// Builds the IR for a resolved concatenation expression.
    pub fn from_rexpr(r: &RExpr) -> IrExpr {
        let mut terms: Vec<IrExpr> = Vec::with_capacity(r.ops.len() + 1);
        for op in &r.ops {
            let base = IrExpr::Output(op.comp);
            let t = match op.mode {
                RefMode::Field {
                    mask,
                    rshift,
                    lshift,
                } => {
                    let f = IrExpr::Field {
                        inner: Box::new(base),
                        mask,
                        rshift,
                    };
                    shl(f, lshift)
                }
                RefMode::Raw { lshift } => shl(base, lshift),
            };
            terms.push(t);
        }
        if r.const_total != 0 || terms.is_empty() {
            terms.push(IrExpr::Const(r.const_total));
        }
        if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            IrExpr::Sum(terms)
        }
    }

    /// The constant value of an expression with no outputs, if foldable.
    pub fn as_const(&self) -> Option<Word> {
        match self {
            IrExpr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Applies a constant ALU function to two IR operands, producing the
    /// specialized operator node (the §4.4 inlining).
    pub fn apply_fn(f: AluFn, left: IrExpr, right: IrExpr) -> IrExpr {
        let l = Box::new(left);
        let r = Box::new(right);
        match f {
            AluFn::Zero | AluFn::Unused => IrExpr::Const(0),
            AluFn::Right => *r,
            AluFn::Left => *l,
            AluFn::Not => IrExpr::Not(l),
            AluFn::Add => IrExpr::Add(l, r),
            AluFn::Sub => IrExpr::Sub(l, r),
            AluFn::Shl => IrExpr::ShlLoop(l, r),
            AluFn::Mul => IrExpr::Mul(l, r),
            AluFn::And => IrExpr::And(l, r),
            AluFn::Or => IrExpr::Or(l, r),
            AluFn::Xor => IrExpr::Xor(l, r),
            AluFn::Eq => IrExpr::Eq(l, r),
            AluFn::Lt => IrExpr::Lt(l, r),
        }
    }

    /// Recursively folds constant sub-expressions. `Dologic` with a
    /// constant function is *not* folded here — that is the inlining
    /// pass's job, so the two optimizations can be ablated independently.
    pub fn fold(self) -> IrExpr {
        use IrExpr::*;
        let fold_box = |b: Box<IrExpr>| Box::new(b.fold());
        match self {
            Const(v) => Const(v),
            Output(c) => Output(c),
            Field {
                inner,
                mask,
                rshift,
            } => {
                let inner = fold_box(inner);
                match inner.as_const() {
                    Some(v) => Const((rtl_core::land(v, mask)) >> rshift),
                    None => Field {
                        inner,
                        mask,
                        rshift,
                    },
                }
            }
            Shl { inner, amount } => {
                let inner = fold_box(inner);
                match inner.as_const() {
                    Some(v) => Const(v.wrapping_shl(u32::from(amount))),
                    None => Shl { inner, amount },
                }
            }
            Sum(terms) => {
                let mut konst: Word = 0;
                let mut rest = Vec::new();
                for t in terms {
                    match t.fold() {
                        Const(v) => konst = konst.wrapping_add(v),
                        other => rest.push(other),
                    }
                }
                if rest.is_empty() {
                    Const(konst)
                } else {
                    if konst != 0 {
                        rest.push(Const(konst));
                    }
                    if rest.len() == 1 {
                        rest.pop().expect("one term")
                    } else {
                        Sum(rest)
                    }
                }
            }
            Not(a) => unary(*a, AluFn::Not, IrExpr::Not),
            Add(a, b) => binary(*a, *b, AluFn::Add, IrExpr::Add),
            Sub(a, b) => binary(*a, *b, AluFn::Sub, IrExpr::Sub),
            ShlLoop(a, b) => binary(*a, *b, AluFn::Shl, IrExpr::ShlLoop),
            Mul(a, b) => binary(*a, *b, AluFn::Mul, IrExpr::Mul),
            And(a, b) => binary(*a, *b, AluFn::And, IrExpr::And),
            Or(a, b) => binary(*a, *b, AluFn::Or, IrExpr::Or),
            Xor(a, b) => binary(*a, *b, AluFn::Xor, IrExpr::Xor),
            Eq(a, b) => binary(*a, *b, AluFn::Eq, IrExpr::Eq),
            Lt(a, b) => binary(*a, *b, AluFn::Lt, IrExpr::Lt),
            Dologic {
                funct,
                left,
                right,
                comp,
            } => Dologic {
                funct: fold_box(funct),
                left: fold_box(left),
                right: fold_box(right),
                comp,
            },
        }
    }

    /// Counts IR nodes (used by optimization statistics and tests).
    pub fn node_count(&self) -> usize {
        use IrExpr::*;
        1 + match self {
            Const(_) | Output(_) => 0,
            Field { inner, .. } | Shl { inner, .. } | Not(inner) => inner.node_count(),
            Sum(ts) => ts.iter().map(IrExpr::node_count).sum(),
            Add(a, b)
            | Sub(a, b)
            | ShlLoop(a, b)
            | Mul(a, b)
            | And(a, b)
            | Or(a, b)
            | Xor(a, b)
            | Eq(a, b)
            | Lt(a, b) => a.node_count() + b.node_count(),
            Dologic {
                funct, left, right, ..
            } => funct.node_count() + left.node_count() + right.node_count(),
        }
    }
}

fn shl(e: IrExpr, amount: u8) -> IrExpr {
    if amount == 0 {
        e
    } else {
        IrExpr::Shl {
            inner: Box::new(e),
            amount,
        }
    }
}

fn unary(a: IrExpr, f: AluFn, ctor: fn(Box<IrExpr>) -> IrExpr) -> IrExpr {
    let a = a.fold();
    match a.as_const() {
        Some(v) => IrExpr::Const(f.apply(v, 0)),
        None => ctor(Box::new(a)),
    }
}

fn binary(a: IrExpr, b: IrExpr, f: AluFn, ctor: fn(Box<IrExpr>, Box<IrExpr>) -> IrExpr) -> IrExpr {
    let a = a.fold();
    let b = b.fold();
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => IrExpr::Const(f.apply(x, y)),
        _ => ctor(Box::new(a), Box::new(b)),
    }
}

/// Whether a memory emits a write/read trace line, decided at compile time
/// where possible (constant operation or too-narrow operation expression).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDecision {
    /// The condition is constant-true: emit every cycle.
    Always,
    /// The condition can never hold: emit no code at all.
    Never,
    /// Test `op & 5 = 5` / `op & 9 = 8` at run time.
    Dynamic,
}

/// A memory's operation expression, specialized when constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpnPlan {
    /// Constant operation: the four-way dispatch disappears.
    Const(Word),
    /// Evaluated each cycle.
    Dynamic(IrExpr),
}

/// One combinational evaluation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// `outputs[id] := expr` — an ALU (specialized or generic).
    Assign {
        /// Target component.
        id: CompId,
        /// Value expression.
        expr: IrExpr,
    },
    /// A selector: bounds-checked case dispatch.
    Select {
        /// Target component.
        id: CompId,
        /// Index expression.
        select: IrExpr,
        /// Case value expressions.
        cases: Vec<IrExpr>,
    },
}

impl Step {
    /// The component this step assigns.
    pub fn target(&self) -> CompId {
        match self {
            Step::Assign { id, .. } | Step::Select { id, .. } => *id,
        }
    }
}

/// A memory's per-cycle plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemPlan {
    /// The memory component.
    pub id: CompId,
    /// Cell count.
    pub size: u32,
    /// Address expression.
    pub addr: IrExpr,
    /// Operation (constant-specialized where possible).
    pub opn: OpnPlan,
    /// Data expression, present only when some reachable operation needs it
    /// (always for dynamic operations; writes/outputs for constant ones).
    pub data: Option<IrExpr>,
    /// Whether the output latch must be maintained (referenced by some
    /// expression, traced, or needed by trace lines). The §5.4 "future
    /// work" temp-elimination pass clears this when safe.
    pub latch_needed: bool,
    /// Write-trace emission decision.
    pub trace_write: TraceDecision,
    /// Read-trace emission decision.
    pub trace_read: TraceDecision,
}

/// The compiled form of one simulation cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleIr {
    /// Combinational steps in dependency order.
    pub steps: Vec<Step>,
    /// Memory plans in definition order.
    pub mems: Vec<MemPlan>,
    /// Components traced each cycle, in declaration order.
    pub traced: Vec<CompId>,
    /// Whether trace text is emitted at all.
    pub trace: bool,
}

impl CycleIr {
    /// Total IR node count across all steps and memory plans.
    pub fn node_count(&self) -> usize {
        let steps: usize = self
            .steps
            .iter()
            .map(|s| match s {
                Step::Assign { expr, .. } => expr.node_count(),
                Step::Select { select, cases, .. } => {
                    select.node_count() + cases.iter().map(IrExpr::node_count).sum::<usize>()
                }
            })
            .sum();
        let mems: usize = self
            .mems
            .iter()
            .map(|m| {
                m.addr.node_count()
                    + match &m.opn {
                        OpnPlan::Const(_) => 0,
                        OpnPlan::Dynamic(e) => e.node_count(),
                    }
                    + m.data.as_ref().map(IrExpr::node_count).unwrap_or(0)
            })
            .sum();
        steps + mems
    }
}

/// Re-export for backends that need the mask constant.
pub const MASK: Word = WORD_MASK;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_collapses_constants() {
        let e = IrExpr::Add(
            Box::new(IrExpr::Const(2)),
            Box::new(IrExpr::Mul(
                Box::new(IrExpr::Const(3)),
                Box::new(IrExpr::Const(4)),
            )),
        );
        assert_eq!(e.fold(), IrExpr::Const(14));
    }

    #[test]
    fn fold_keeps_dynamic_parts() {
        let d = rtl_core::Design::from_source("# f\nx .\nA x 0 0 0 .").unwrap();
        let x = d.find("x").unwrap();
        let e = IrExpr::Add(Box::new(IrExpr::Output(x)), Box::new(IrExpr::Const(0)));
        // Output + 0 is not algebraically simplified (only constant folding).
        assert_eq!(
            e.clone().fold(),
            IrExpr::Add(Box::new(IrExpr::Output(x)), Box::new(IrExpr::Const(0)))
        );
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn fold_preserves_shift_quirk() {
        // ShlLoop(5, 0) folds to 0, not 5, per the dologic semantics.
        let e = IrExpr::ShlLoop(Box::new(IrExpr::Const(5)), Box::new(IrExpr::Const(0)));
        assert_eq!(e.fold(), IrExpr::Const(0));
    }

    #[test]
    fn sum_folding_merges_constants() {
        let d = rtl_core::Design::from_source("# f\nx .\nA x 0 0 0 .").unwrap();
        let x = d.find("x").unwrap();
        let e = IrExpr::Sum(vec![IrExpr::Const(5), IrExpr::Output(x), IrExpr::Const(7)]);
        assert_eq!(
            e.fold(),
            IrExpr::Sum(vec![IrExpr::Output(x), IrExpr::Const(12)])
        );
    }

    #[test]
    fn apply_fn_specializes() {
        let l = IrExpr::Const(1);
        let r = IrExpr::Const(2);
        assert_eq!(
            IrExpr::apply_fn(AluFn::Zero, l.clone(), r.clone()),
            IrExpr::Const(0)
        );
        assert_eq!(
            IrExpr::apply_fn(AluFn::Right, l.clone(), r.clone()),
            IrExpr::Const(2)
        );
        assert_eq!(
            IrExpr::apply_fn(AluFn::Left, l.clone(), r.clone()),
            IrExpr::Const(1)
        );
        assert!(matches!(
            IrExpr::apply_fn(AluFn::Add, l, r),
            IrExpr::Add(_, _)
        ));
    }
}
