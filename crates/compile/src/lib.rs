//! # rtl-compile — ASIM II, the optimizing specification compiler
//!
//! The paper's primary contribution: instead of interpreting the
//! specification tables every cycle (ASIM / `rtl-interp`), compile them.
//! This crate provides three compiled tiers:
//!
//! 1. **Bytecode VM** ([`Vm`]) — the specification lowered to an optimized
//!    [`ir::CycleIr`] and flattened to register bytecode; runs in-process.
//! 2. **Generated Rust** ([`emit::rust`]) — a standalone program compiled
//!    by `rustc` ([`rustc::build`]), playing the role of ASIM II's
//!    generated Pascal in the Figure 5.1 pipeline.
//! 3. **Generated Pascal** ([`emit::pascal`]) — faithful to the original's
//!    output (Figures 4.1–4.3), kept as a golden artifact.
//!
//! The optimizations of §4.4 (constant-function inlining, constant memory
//! operations) and §5.4 (latch elision) are independent passes in
//! [`lower::OptOptions`], so the benchmark suite can ablate them.
//!
//! ```
//! use rtl_core::{Design, Engine, run_captured};
//! use rtl_compile::Vm;
//! let d = Design::from_source(
//!     "# counter\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
//! ).unwrap();
//! let mut vm = Vm::new(&d);
//! let text = run_captured(&mut vm, 2).unwrap();
//! assert!(text.starts_with("Cycle   0 count= 0"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod factory;
pub mod ir;
pub mod lower;
pub mod rustc;
pub mod vm;

pub use emit::{pascal::emit_pascal, rust::emit_rust, EmitOptions};
pub use factory::{GeneratedRustFactory, VmFactory};
pub use ir::{CycleIr, IrExpr, TraceDecision};
pub use lower::{lower, stats, LowerStats, OptOptions};
pub use rustc::{build, rustc_available, BinaryCache, CompiledSim, PipelineError};
pub use vm::{compile_program, Program, Vm};

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::{run_captured, Design, Engine};
    use rtl_interp::Interpreter;

    fn design(src: &str) -> Design {
        Design::from_source(src).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs interpreter and VM (at every optimization level) side by side
    /// and insists on identical text and state.
    fn differential(src: &str, cycles: u64) {
        let d = design(src);
        let mut interp = Interpreter::new(&d);
        let expected =
            run_captured(&mut interp, cycles).unwrap_or_else(|(t, e)| panic!("interp: {e}\n{t}"));
        for opts in [OptOptions::full(), OptOptions::none()] {
            let mut vm = Vm::with_options(&d, opts, true);
            let got = run_captured(&mut vm, cycles)
                .unwrap_or_else(|(t, e)| panic!("vm {opts:?}: {e}\n{t}"));
            assert_eq!(got, expected, "vm output mismatch with {opts:?}");
            if opts.elide_dead_latches {
                // Elided latches are by construction unobservable; compare
                // only the latches the pass kept.
                let ir = lower(&d, opts);
                let kept: Vec<bool> = {
                    let mut v = vec![true; d.len()];
                    for m in &ir.mems {
                        v[m.id.index()] = m.latch_needed;
                    }
                    v
                };
                for (i, keep) in kept.iter().enumerate() {
                    if *keep {
                        assert_eq!(
                            vm.state().outputs()[i],
                            interp.state().outputs()[i],
                            "observable state mismatch at {} with {opts:?}",
                            d.name(d.id_at(i))
                        );
                    }
                }
            } else {
                assert_eq!(
                    vm.state().outputs(),
                    interp.state().outputs(),
                    "state mismatch with {opts:?}"
                );
            }
        }
    }

    #[test]
    fn vm_matches_interpreter_on_counter() {
        differential(
            "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
            8,
        );
    }

    #[test]
    fn vm_matches_interpreter_on_selector_machine() {
        differential(
            "# s\nc* s* n rom .\nM c 0 n 1 1\nA n 4 c 1\n\
             S s c.0.1 rom.0.3 rom.4.7 10 c\nM rom c.0.2 0 0 -8 1 2 3 4 5 6 7 8 .",
            16,
        );
    }

    #[test]
    fn vm_matches_interpreter_on_traced_memories() {
        differential(
            "# t\nm* c n .\nM c 0 n 1 1\nA n 4 c 1\nM m c.0.1 c 5 4 .",
            8,
        );
    }

    #[test]
    fn vm_matches_interpreter_on_dynamic_ops() {
        // The memory's operation flips between read (0) and write (1) with
        // the counter's low bit.
        differential("# d\nm* c n .\nM c 0 n 1 1\nA n 4 c 1\nM m 0 c c.0 1 .", 8);
    }

    #[test]
    fn vm_matches_interpreter_on_alu_zoo() {
        // One ALU per function, fed by a counter.
        let mut names = String::from("c n ");
        let mut comps = String::from("M c 0 n 1 1\nA n 4 c 1\n");
        for f in 0..=13 {
            names.push_str(&format!("f{f}* "));
            comps.push_str(&format!("A f{f} {f} c.0.3 3\n"));
        }
        let src = format!("# zoo\n{names}.\n{comps}.");
        differential(&src, 20);
    }

    #[test]
    fn vm_matches_interpreter_on_output_events() {
        differential(
            "# o\nc n o1 o2 .\nM c 0 n 1 1\nA n 4 c 1\n\
             M o1 1 c 3 1\nM o2 4096 c 3 1 .",
            5,
        );
    }

    #[test]
    fn vm_runtime_errors_match() {
        let d = design("# bad\nc s n .\nM c 0 n 1 1\nA n 4 c 1\nS s c 1 2 .");
        let mut interp = Interpreter::new(&d);
        let e1 = run_captured(&mut interp, 10).unwrap_err().1;
        let mut vm = Vm::new(&d);
        let e2 = run_captured(&mut vm, 10).unwrap_err().1;
        assert_eq!(e1, e2);
    }

    #[test]
    fn latch_elision_does_not_change_visible_output() {
        let src = "# e\nc n sink .\nM c 0 n 1 1\nA n 4 c 1\nM sink 0 n 1 1 .";
        let d = design(src);
        assert_eq!(stats(&lower(&d, OptOptions::full())).elided_latches, 1);
        differential(src, 8);
    }
}
