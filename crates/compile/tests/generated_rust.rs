//! End-to-end check of the generated-Rust pipeline: emit → `rustc -O` →
//! run → compare byte-for-byte with the interpreter.

use rtl_compile::{build, rustc_available, EmitOptions};
use rtl_core::{Design, Session, Until};
use rtl_interp::Interpreter;

fn interp_output(design: &Design, last_cycle: i64) -> String {
    let mut session = Session::over(Interpreter::new(design)).capture().build();
    assert!(session.run(Until::Cycle(last_cycle)).completed());
    session.output_text()
}

#[test]
fn compiled_program_matches_interpreter() {
    if !rustc_available() {
        eprintln!("skipping: rustc not on PATH");
        return;
    }
    // A design touching every feature class: ALU zoo member, selector,
    // register, ROM, traced memory, write tracing, integer output.
    let src = "\
# pipeline smoke machine
= 12
c* n rom* mux* acc* out tw .
M c 0 n 1 1
A n 4 c 1
M rom c.0.2 0 0 -8 5 9 1 7 3 8 2 6
S mux c.0.1 rom.0.3 c acc 10
M acc 0 mux 1 1
M out 1 acc 3 1
M tw c.0.1 mux 5 4
.";
    let design = Design::from_source(src).unwrap_or_else(|e| panic!("{e}"));
    let expected = interp_output(&design, 12);

    let sim = build(&design, &EmitOptions::default()).unwrap_or_else(|e| panic!("{e}"));
    let (got, _elapsed) = sim.run(b"").unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(got, expected);
}

#[test]
fn compiled_program_handles_input() {
    if !rustc_available() {
        eprintln!("skipping: rustc not on PATH");
        return;
    }
    let src = "# echo machine\n= 3\ni o .\nM i 1 0 2 1\nM o 1 i 3 1 .";
    let design = Design::from_source(src).unwrap_or_else(|e| panic!("{e}"));

    let mut session = Session::over(Interpreter::new(&design))
        .capture()
        .scripted([41, 42, 43, 44])
        .build();
    assert!(session.run(Until::Cycle(3)).completed());
    let expected = session.output_text();

    let compiled = build(&design, &EmitOptions::default()).unwrap_or_else(|e| panic!("{e}"));
    let (got, _) = compiled
        .run(b"41 42 43 44\n")
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(got, expected);
}

#[test]
fn interactive_program_prompts_and_continues() {
    if !rustc_available() {
        eprintln!("skipping: rustc not on PATH");
        return;
    }
    // No `= n` clause: the interactive program must ask, run, and offer to
    // continue — the faithful Appendix A behaviour.
    let src = "# interactive counter\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .";
    let design = Design::from_source(src).unwrap();
    let options = EmitOptions {
        interactive: true,
        ..EmitOptions::default()
    };
    let sim = build(&design, &options).unwrap_or_else(|e| panic!("{e}"));

    // Trace 0..=2, continue to 5, then quit.
    let (out, _) = sim.run(b"2 5 0\n").unwrap_or_else(|e| panic!("{e}"));
    assert!(out.starts_with("Number of cycles to trace\n"), "{out}");
    assert!(
        out.contains("Cycle   2 count= 2\nContinue to cycle (0 to quit)\n"),
        "{out}"
    );
    assert!(
        out.contains("Cycle   5 count= 5\nContinue to cycle (0 to quit)\n"),
        "{out}"
    );
    assert!(!out.contains("Cycle   6"), "{out}");

    // EOF at the continue prompt quits cleanly (read(cycles) -> 0).
    let (out, _) = sim.run(b"1").unwrap_or_else(|e| panic!("{e}"));
    assert!(out.contains("Cycle   1 count= 1"), "{out}");
    assert!(!out.contains("Cycle   2"), "{out}");
}
