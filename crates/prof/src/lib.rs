//! Deterministic execution profiles for the ASIM II stack.
//!
//! `rtl-obs` answers *how much* work a run did and *how long* it took;
//! this crate answers *where* the work went inside a simulated design:
//! which components evaluate, which selector arms fire, which memory
//! cells are read and written, and which ALU functions execute. That is
//! exactly the data a dirty-cell scheduler needs — a component that
//! evaluates every cycle but never changes is the canonical candidate
//! for skipping.
//!
//! The design mirrors [`Recorder`]'s split between a cheap shared handle
//! and the document it produces:
//!
//! * [`ProfileHook`] — a clonable handle threaded through engine options.
//!   Disabled (the default) it is a no-op costing one `Option` check at
//!   attach time and nothing per cycle; enabled, all clones share one
//!   tally.
//! * [`LaneTally`] — the per-engine hot-path collector: plain `Vec`
//!   counters indexed by component, folded into the hook once, when the
//!   engine drops. Engines pay array increments per event, never a lock.
//! * [`Profile`] — the versioned `asim2-profile v1` document: a sorted
//!   `component/event -> count` map with a byte-stable rendering, so
//!   profiles from different runs, worker counts, or kill+resume splits
//!   can be `cmp`-ed or merged.
//!
//! Determinism contract: every count is a pure function of the simulated
//! work, and the rendering sorts keys, so equal work produces equal
//! bytes. Wall-clock never appears in a profile.
//!
//! [`Recorder`]: https://docs.rs/rtl-obs

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The profile document format line; bump on breaking shape changes.
pub const FORMAT: &str = "asim2-profile v1";

/// ALU function names in numeric order (`AluFn::number()` order), used
/// as the `op/<name>` event suffix so profiles read without a decoder
/// ring.
pub const ALU_OP_NAMES: [&str; 14] = [
    "zero", "right", "left", "not", "add", "sub", "shl", "mul", "and", "or", "xor", "unused", "eq",
    "lt",
];

/// A cheap, clonable profile tap threaded through engine options.
///
/// Disabled (the [`Default`]) every operation is a no-op; enabled
/// ([`ProfileHook::collecting`]), all clones share one tally that
/// [`ProfileHook::snapshot`] renders as a [`Profile`].
#[derive(Debug, Clone, Default)]
pub struct ProfileHook {
    inner: Option<Arc<Inner>>,
}

/// A hook is a run-time tap, not part of any configuration's identity:
/// two options structs that differ only in their hook configure the same
/// simulation, so hooks always compare equal.
impl PartialEq for ProfileHook {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for ProfileHook {}

#[derive(Debug, Default)]
struct Inner {
    totals: Mutex<BTreeMap<String, u64>>,
}

impl ProfileHook {
    /// The no-op hook (same as [`Default`]); costs nothing per event.
    pub fn disabled() -> Self {
        ProfileHook::default()
    }

    /// A collecting hook: all clones fold into one shared tally.
    pub fn collecting() -> Self {
        ProfileHook {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// `true` when events are being collected. Engines use this to skip
    /// building a [`LaneTally`] at all on the disabled path.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to the `component/event` counter. Zero adds are dropped
    /// so snapshots never carry dead keys.
    pub fn add(&self, component: &str, event: &str, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(inner) = &self.inner {
            let mut totals = inner.totals.lock().unwrap_or_else(|e| e.into_inner());
            *totals.entry(format!("{component}/{event}")).or_insert(0) += n;
        }
    }

    /// The counters collected so far, as a document. An empty profile for
    /// a disabled hook.
    pub fn snapshot(&self) -> Profile {
        match &self.inner {
            Some(inner) => Profile {
                counters: inner
                    .totals
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone(),
            },
            None => Profile::default(),
        }
    }
}

/// Static shape of one design component, captured when a tally is built
/// so the hot path indexes plain arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompMeta {
    /// Component name as it appears in the design (the profile key
    /// prefix).
    pub name: String,
    /// Selector arm count (0 for ALUs and memories).
    pub arms: usize,
    /// Memory cell count (0 for combinational components).
    pub cells: usize,
}

impl CompMeta {
    /// A combinational component (ALU or selector without arms tracked).
    pub fn comb(name: impl Into<String>) -> Self {
        CompMeta {
            name: name.into(),
            arms: 0,
            cells: 0,
        }
    }

    /// A selector with `arms` case arms.
    pub fn selector(name: impl Into<String>, arms: usize) -> Self {
        CompMeta {
            name: name.into(),
            arms,
            cells: 0,
        }
    }

    /// A memory with `cells` addressable cells.
    pub fn memory(name: impl Into<String>, cells: usize) -> Self {
        CompMeta {
            name: name.into(),
            arms: 0,
            cells,
        }
    }
}

/// The per-engine hot-path collector: plain `Vec` counters indexed by
/// component (design index order), flushed into the shared hook exactly
/// once — on [`LaneTally::flush`] or drop. Increment methods are
/// bounds-checked no-ops for out-of-range indices, so instrumentation
/// never has to guard.
#[derive(Debug)]
pub struct LaneTally {
    hook: ProfileHook,
    comps: Vec<CompMeta>,
    evals: Vec<u64>,
    changes: Vec<u64>,
    arms: Vec<Vec<u64>>,
    ops: Vec<[u64; 14]>,
    reads: Vec<Vec<u64>>,
    writes: Vec<Vec<u64>>,
    inputs: Vec<u64>,
    outputs: Vec<u64>,
    flushed: bool,
}

impl LaneTally {
    /// Builds a tally over `comps` feeding `hook`.
    pub fn new(hook: ProfileHook, comps: Vec<CompMeta>) -> Self {
        let n = comps.len();
        LaneTally {
            evals: vec![0; n],
            changes: vec![0; n],
            arms: comps.iter().map(|c| vec![0; c.arms]).collect(),
            ops: vec![[0; 14]; n],
            reads: comps.iter().map(|c| vec![0; c.cells]).collect(),
            writes: comps.iter().map(|c| vec![0; c.cells]).collect(),
            inputs: vec![0; n],
            outputs: vec![0; n],
            comps,
            hook,
            flushed: false,
        }
    }

    /// One evaluation of component `comp`.
    #[inline]
    pub fn eval(&mut self, comp: usize) {
        if let Some(n) = self.evals.get_mut(comp) {
            *n += 1;
        }
    }

    /// Component `comp` evaluated to a *different* value than it held.
    #[inline]
    pub fn change(&mut self, comp: usize) {
        if let Some(n) = self.changes.get_mut(comp) {
            *n += 1;
        }
    }

    /// Selector `comp` took arm `arm`.
    #[inline]
    pub fn arm(&mut self, comp: usize, arm: usize) {
        if let Some(n) = self.arms.get_mut(comp).and_then(|a| a.get_mut(arm)) {
            *n += 1;
        }
    }

    /// ALU `comp` executed function number `op` (see [`ALU_OP_NAMES`]).
    #[inline]
    pub fn op(&mut self, comp: usize, op: usize) {
        if let Some(n) = self.ops.get_mut(comp).and_then(|a| a.get_mut(op)) {
            *n += 1;
        }
    }

    /// Memory `comp` read cell `cell`.
    #[inline]
    pub fn read(&mut self, comp: usize, cell: usize) {
        if let Some(n) = self.reads.get_mut(comp).and_then(|c| c.get_mut(cell)) {
            *n += 1;
        }
    }

    /// Memory `comp` wrote cell `cell`.
    #[inline]
    pub fn write(&mut self, comp: usize, cell: usize) {
        if let Some(n) = self.writes.get_mut(comp).and_then(|c| c.get_mut(cell)) {
            *n += 1;
        }
    }

    /// Memory `comp` consumed an input word.
    #[inline]
    pub fn input(&mut self, comp: usize) {
        if let Some(n) = self.inputs.get_mut(comp) {
            *n += 1;
        }
    }

    /// Memory `comp` emitted an output word.
    #[inline]
    pub fn output(&mut self, comp: usize) {
        if let Some(n) = self.outputs.get_mut(comp) {
            *n += 1;
        }
    }

    /// Folds every non-zero counter into the hook. Idempotent; also runs
    /// on drop.
    pub fn flush(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        for (i, comp) in self.comps.iter().enumerate() {
            let name = &comp.name;
            self.hook.add(name, "eval", self.evals[i]);
            self.hook.add(name, "change", self.changes[i]);
            for (a, n) in self.arms[i].iter().enumerate() {
                self.hook.add(name, &format!("arm/{a}"), *n);
            }
            for (o, n) in self.ops[i].iter().enumerate() {
                self.hook.add(name, &format!("op/{}", ALU_OP_NAMES[o]), *n);
            }
            for (c, n) in self.reads[i].iter().enumerate() {
                self.hook.add(name, &format!("read/{c}"), *n);
            }
            for (c, n) in self.writes[i].iter().enumerate() {
                self.hook.add(name, &format!("write/{c}"), *n);
            }
            self.hook.add(name, "input", self.inputs[i]);
            self.hook.add(name, "output", self.outputs[i]);
        }
    }
}

impl Drop for LaneTally {
    fn drop(&mut self) {
        self.flush();
    }
}

/// One component's headline numbers, aggregated from a [`Profile`] for
/// the hot-component table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentRow {
    /// Component name.
    pub name: String,
    /// Sum of every counter under this component.
    pub events: u64,
    /// Evaluations (`eval`).
    pub evals: u64,
    /// Value changes (`change`).
    pub changes: u64,
}

impl ComponentRow {
    /// `changes / evals` — the dirty-cell signal. A component with a low
    /// ratio re-evaluates without changing, the canonical skip
    /// candidate. `None` when the component never evaluated.
    pub fn activity(&self) -> Option<f64> {
        (self.evals > 0).then(|| self.changes as f64 / self.evals as f64)
    }
}

/// The versioned profile document: sorted `component/event -> count`.
///
/// Rendering is byte-stable (sorted keys, canonical number formatting),
/// which is what lets CI gate worker-count and resume identity with
/// `cmp`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    counters: BTreeMap<String, u64>,
}

impl Profile {
    /// Adds `n` to `key` (a `component/event` path). Zero adds are
    /// dropped.
    pub fn add(&mut self, key: &str, n: u64) {
        if n > 0 {
            *self.counters.entry(key.to_string()).or_insert(0) += n;
        }
    }

    /// Sums another profile into this one.
    pub fn merge(&mut self, other: &Profile) {
        for (key, n) in &other.counters {
            self.add(key, *n);
        }
    }

    /// Iterates `(key, count)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// `true` when no counter is set.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Sum of every counter.
    pub fn total_events(&self) -> u64 {
        self.counters.values().sum()
    }

    /// Per-component aggregation, sorted by total events descending
    /// (name ascending on ties) — the hot-component table order.
    pub fn components(&self) -> Vec<ComponentRow> {
        let mut by_name: BTreeMap<&str, ComponentRow> = BTreeMap::new();
        for (key, n) in &self.counters {
            let (comp, event) = key.split_once('/').unwrap_or((key.as_str(), ""));
            let row = by_name.entry(comp).or_insert_with(|| ComponentRow {
                name: comp.to_string(),
                events: 0,
                evals: 0,
                changes: 0,
            });
            row.events += n;
            match event {
                "eval" => row.evals += n,
                "change" => row.changes += n,
                _ => {}
            }
        }
        let mut rows: Vec<ComponentRow> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.events.cmp(&a.events).then_with(|| a.name.cmp(&b.name)));
        rows
    }

    /// Renders the `asim2-profile v1` document. Byte-stable: sorted
    /// keys, one line per counter.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": \"{FORMAT}\",\n"));
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (key, n) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {n}", escape(key)));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a rendered document.
    ///
    /// # Errors
    ///
    /// A message naming the first structural problem (wrong format line,
    /// malformed JSON, non-numeric counter).
    pub fn parse(text: &str) -> Result<Profile, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.ws();
        p.expect(b'{')?;
        let mut format_seen = false;
        let mut counters = BTreeMap::new();
        loop {
            p.ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.ws();
            p.expect(b':')?;
            p.ws();
            match key.as_str() {
                "format" => {
                    let value = p.string()?;
                    if value != FORMAT {
                        return Err(format!(
                            "unsupported profile format {value:?} (expected {FORMAT:?})"
                        ));
                    }
                    format_seen = true;
                }
                "counters" => {
                    p.expect(b'{')?;
                    loop {
                        p.ws();
                        if p.eat(b'}') {
                            break;
                        }
                        let ckey = p.string()?;
                        p.ws();
                        p.expect(b':')?;
                        p.ws();
                        let n = p.number()?;
                        *counters.entry(ckey).or_insert(0) += n;
                        p.ws();
                        if !p.eat(b',') {
                            p.ws();
                            p.expect(b'}')?;
                            break;
                        }
                    }
                }
                other => return Err(format!("unknown profile field {other:?}")),
            }
            p.ws();
            if !p.eat(b',') {
                p.ws();
                p.expect(b'}')?;
                break;
            }
        }
        if !format_seen {
            return Err("profile document has no format line".into());
        }
        Ok(Profile { counters })
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A minimal parser for exactly the documents this crate renders (plus
/// whitespace freedom): objects, strings with basic escapes, and
/// unsigned integers.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or("bad \\u escape")?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err("unsupported escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Strings are UTF-8 slices of the input; copy the
                    // whole multi-byte sequence through.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                        && b >= 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "counter out of range".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hook_collects_nothing() {
        let hook = ProfileHook::disabled();
        assert!(!hook.enabled());
        hook.add("a", "eval", 5);
        assert!(hook.snapshot().is_empty());
    }

    #[test]
    fn clones_share_one_tally() {
        let hook = ProfileHook::collecting();
        let clone = hook.clone();
        hook.add("a", "eval", 2);
        clone.add("a", "eval", 3);
        clone.add("b", "arm/1", 1);
        let profile = hook.snapshot();
        let counters: Vec<(&str, u64)> = profile.iter().collect();
        assert_eq!(counters, vec![("a/eval", 5), ("b/arm/1", 1)]);
    }

    #[test]
    fn hooks_compare_equal_regardless_of_state() {
        assert_eq!(ProfileHook::disabled(), ProfileHook::collecting());
    }

    #[test]
    fn tally_flushes_non_zero_counters_once() {
        let hook = ProfileHook::collecting();
        {
            let mut tally = LaneTally::new(
                hook.clone(),
                vec![
                    CompMeta::comb("alu"),
                    CompMeta::selector("sel", 3),
                    CompMeta::memory("mem", 4),
                ],
            );
            tally.eval(0);
            tally.eval(0);
            tally.change(0);
            tally.op(0, 4); // add
            tally.arm(1, 2);
            tally.read(2, 1);
            tally.write(2, 3);
            tally.input(2);
            tally.output(2);
            // Out-of-range increments are dropped, not panics.
            tally.eval(99);
            tally.arm(1, 99);
            tally.read(2, 99);
            tally.flush();
            tally.flush(); // idempotent; drop will be a no-op too
        }
        let profile = hook.snapshot();
        let counters: Vec<(&str, u64)> = profile.iter().collect();
        assert_eq!(
            counters,
            vec![
                ("alu/change", 1),
                ("alu/eval", 2),
                ("alu/op/add", 1),
                ("mem/input", 1),
                ("mem/output", 1),
                ("mem/read/1", 1),
                ("mem/write/3", 1),
                ("sel/arm/2", 1),
            ]
        );
    }

    #[test]
    fn render_parse_round_trip_and_byte_stability() {
        let mut a = Profile::default();
        a.add("z/eval", 3);
        a.add("a/op/add", 1);
        let mut b = Profile::default();
        b.add("a/op/add", 1);
        b.add("z/eval", 3);
        assert_eq!(a.render(), b.render(), "insert order never shows");
        let parsed = Profile::parse(&a.render()).unwrap();
        assert_eq!(parsed, a);
        assert!(Profile::parse("{}").is_err(), "format line required");
        assert!(Profile::parse("{\"format\": \"nope\"}").is_err());
    }

    #[test]
    fn empty_profile_round_trips() {
        let empty = Profile::default();
        assert_eq!(Profile::parse(&empty.render()).unwrap(), empty);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Profile::default();
        a.add("x/eval", 2);
        let mut b = Profile::default();
        b.add("x/eval", 3);
        b.add("y/change", 1);
        a.merge(&b);
        let counters: Vec<(&str, u64)> = a.iter().collect();
        assert_eq!(counters, vec![("x/eval", 5), ("y/change", 1)]);
        assert_eq!(a.total_events(), 6);
    }

    #[test]
    fn component_rows_rank_by_events() {
        let mut p = Profile::default();
        p.add("cold/eval", 1);
        p.add("hot/eval", 10);
        p.add("hot/change", 2);
        p.add("hot/op/add", 10);
        let rows = p.components();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "hot");
        assert_eq!(rows[0].events, 22);
        assert_eq!(rows[0].evals, 10);
        assert_eq!(rows[0].changes, 2);
        assert_eq!(rows[0].activity(), Some(0.2));
        assert_eq!(rows[1].name, "cold");
        assert_eq!(rows[1].activity(), Some(0.0));
    }

    #[test]
    fn alu_names_cover_every_function_number() {
        assert_eq!(ALU_OP_NAMES.len(), 14);
        let unique: std::collections::BTreeSet<&str> = ALU_OP_NAMES.iter().copied().collect();
        assert_eq!(unique.len(), 14);
    }
}
