//! The fleet error type.

use crate::protocol::Refusal;
use rtl_campaign::CampaignError;

/// Why a fleet operation failed outright.
#[derive(Debug)]
pub enum FleetError {
    /// A campaign-layer failure (state, configuration, lanes, I/O under
    /// the campaign directory).
    Campaign(CampaignError),
    /// Network or stream failure.
    Io(std::io::Error),
    /// The peer refused the conversation with a structured error frame.
    Refused {
        /// The stable refusal label.
        reason: Refusal,
        /// Human-readable detail from the error frame.
        detail: String,
    },
    /// The peer violated the protocol (bad frame, unexpected message,
    /// connection closed mid-conversation).
    Protocol(String),
    /// The worker deliberately abandoned its connection mid-lease
    /// (`--abandon-after`, the fault-injection hook for reassignment
    /// tests).
    Abandoned,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Campaign(e) => write!(f, "{e}"),
            FleetError::Io(e) => write!(f, "i/o error: {e}"),
            FleetError::Refused { reason, detail } => {
                write!(f, "refused: {}: {detail}", reason.label())
            }
            FleetError::Protocol(m) => write!(f, "protocol error: {m}"),
            FleetError::Abandoned => f.write_str("connection abandoned mid-lease"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<CampaignError> for FleetError {
    fn from(e: CampaignError) -> Self {
        FleetError::Campaign(e)
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}
