//! A read-only client for watching a live fleet.
//!
//! A status client completes the same `asim2-fleet v1` handshake as a
//! worker, but with `role: "status"` — it passes the protocol, token,
//! and fingerprint checks, skips the duplicate-name check, and never
//! registers in the controller's worker table, so any number of
//! watchers may poll a campaign without perturbing dispatch. The only
//! frames a status connection may send afterwards are `status-request`
//! and `bye`; everything else is refused.
//!
//! The answer to each request is an `asim2-fleet-status v1` JSON
//! document (see [`crate::controller`]): campaign identity and totals,
//! outstanding leases with deadlines, connected workers with heartbeat
//! ages and throughput, the divergence tally, and a straight-line ETA.

use crate::error::FleetError;
use crate::protocol::{decode, Framed, Message, Poll, PROTOCOL};
use std::net::TcpStream;

/// The status document format identifier.
pub const STATUS_FORMAT: &str = "asim2-fleet-status v1";

/// A connected read-only status peer.
pub struct StatusClient {
    framed: Framed,
}

impl StatusClient {
    /// Connects to a controller and completes the read-only handshake.
    ///
    /// # Errors
    ///
    /// Connection failure, a handshake refusal ([`FleetError::Refused`]
    /// with the controller's named reason), or a protocol violation.
    pub fn connect(addr: &str, token: &str) -> Result<StatusClient, FleetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut framed = Framed::new(stream)?;
        let hello = Message::Hello {
            protocol: PROTOCOL.into(),
            token: token.into(),
            worker: "status".into(),
            fingerprint: None,
            role: Some("status".into()),
        };
        match framed.call(&hello)? {
            Message::Welcome { .. } => Ok(StatusClient { framed }),
            Message::Error { reason, detail } => Err(FleetError::Refused { reason, detail }),
            other => Err(FleetError::Protocol(format!(
                "handshake answered with {:?}",
                other.kind()
            ))),
        }
    }

    /// Fetches one status document. Returns `Ok(None)` when the
    /// controller has gone away (the campaign drained and the serve
    /// returned) — the clean end of a watch loop, not an error.
    ///
    /// # Errors
    ///
    /// A refusal, a protocol violation, or stream failure other than a
    /// clean close.
    pub fn fetch(&mut self) -> Result<Option<String>, FleetError> {
        if let Err(e) = self.framed.send(&Message::StatusRequest) {
            return if closed(&e) {
                Ok(None)
            } else {
                Err(FleetError::Io(e))
            };
        }
        loop {
            match self.framed.poll() {
                Ok(Poll::Frame(line)) => {
                    let msg = decode(&line)
                        .map_err(|e| FleetError::Protocol(format!("bad frame: {e}")))?;
                    return match msg {
                        Message::Status { body } => Ok(Some(body)),
                        Message::Error { reason, detail } => {
                            Err(FleetError::Refused { reason, detail })
                        }
                        other => Err(FleetError::Protocol(format!(
                            "status request answered with {:?}",
                            other.kind()
                        ))),
                    };
                }
                Ok(Poll::Pending) => continue,
                Ok(Poll::Eof) => return Ok(None),
                Err(e) if closed(&e) => return Ok(None),
                Err(e) => return Err(FleetError::Io(e)),
            }
        }
    }
}

/// Whether a stream error means the peer is simply gone.
fn closed(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof
    )
}
