//! The fleet controller: owns the campaign directory, leases case ranges
//! to authenticated workers, and publishes validated uploads atomically.
//!
//! The controller is a single-threaded event loop over non-blocking
//! accepts and short-timeout reads — the protocol is strict
//! request/response, frames are small, and a lease is coarse (a worker
//! talks once per lease plus rate-limited heartbeats), so one thread
//! multiplexing every connection is simpler than a thread-per-connection
//! design and leaves nothing to lock.
//!
//! Determinism of the *directory* is inherited from the campaign layer:
//! every uploaded artifact is a pure function of `(config, index)`,
//! validated against the configuration (shared with the `rtl-dist` merge
//! refusals) and published with the same atomic write + dedup rules a
//! shard merge uses. Determinism of the *fleet counters* holds as long
//! as every granted lease drains: grants always take the first
//! contiguous run of pending cases, so `fleet/leases_granted` and
//! `fleet/cases_dispatched` are byte-identical across worker counts and
//! across a graceful `--limit` stop + restart. A worker that dies
//! mid-lease legitimately re-dispatches its cases — the same caveat the
//! campaign layer documents for `bin_cache` counters.

use crate::error::FleetError;
use crate::protocol::{CorpusFiles, Framed, Message, Poll, Refusal, PROTOCOL};
use rtl_campaign::json::Json;
use rtl_campaign::state::{write_atomic, CaseStatus};
use rtl_campaign::{
    corpus, CampaignConfig, CampaignDir, CampaignError, CampaignReport, CaseRecord,
};
use rtl_obs::{Event, Histogram, Recorder};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Controller knobs. None of them affect case outcomes — the campaign
/// configuration alone does — so none are fingerprinted.
#[derive(Debug, Clone)]
pub struct ControllerOptions {
    /// The shared token workers must present in their handshake.
    pub token: String,
    /// Cases per lease.
    pub lease: u32,
    /// Lease liveness deadline: a lease with no record or heartbeat from
    /// its worker for this long expires back into the pool.
    pub deadline: Duration,
    /// Stop granting new leases once at least this many cases have been
    /// *dispatched*, drain the outstanding leases, and exit with the
    /// campaign incomplete (resume by serving again). Rounded up to
    /// lease granularity — which is what keeps the fleet counters
    /// byte-identical across worker counts even through a stop+restart.
    pub limit: Option<u32>,
    /// Collect per-case execution profiles (workers run with profiling
    /// and upload the sidecars).
    pub profile: bool,
    /// Arm the divergence flight recorder fleet-wide (workers run with
    /// the ring buffer armed and upload `case-N.flight.jsonl` sidecars
    /// for every non-agreeing case).
    pub flight: bool,
    /// Telemetry tap (disabled by default). Deterministic fleet counters:
    /// `fleet/leases_granted`, `fleet/cases_dispatched`,
    /// `fleet/records_accepted`, `fleet/corpus_accepted`.
    pub recorder: Recorder,
    /// Retry delay handed to workers when nothing is leasable right now.
    pub wait_ms: u64,
    /// How long to keep answering `Drained` after the campaign finishes,
    /// so sleeping workers can come back, learn they are done, and
    /// disconnect cleanly.
    pub grace: Duration,
}

impl Default for ControllerOptions {
    fn default() -> Self {
        ControllerOptions {
            token: String::new(),
            lease: 8,
            deadline: Duration::from_secs(30),
            limit: None,
            profile: false,
            flight: false,
            recorder: Recorder::disabled(),
            wait_ms: 200,
            grace: Duration::from_secs(2),
        }
    }
}

/// Live fleet progress callbacks, invoked on the serving thread.
pub trait FleetProgress {
    /// A new case record was accepted and is on disk.
    fn record_accepted(&mut self, worker: &str, record: &CaseRecord, done: u32, total: u32);
    /// A worker completed its handshake.
    fn worker_joined(&mut self, _worker: &str) {}
    /// A worker disconnected (cleanly or not).
    fn worker_left(&mut self, _worker: &str) {}
    /// A lease passed its deadline and went back into the pool.
    fn lease_expired(&mut self, _worker: &str, _start: u32, _end: u32) {}
    /// The campaign drained; wall-clock shape of the run, for the final
    /// summary: heartbeat-age and lease-duration histograms (both in
    /// microseconds).
    fn fleet_summary(&mut self, _heartbeats: &Histogram, _leases: &Histogram) {}
}

/// Ignores fleet progress.
pub struct NoFleetProgress;

impl FleetProgress for NoFleetProgress {
    fn record_accepted(&mut self, _worker: &str, _record: &CaseRecord, _done: u32, _total: u32) {}
}

/// A bound fleet controller, ready to serve one campaign.
pub struct Controller {
    listener: TcpListener,
}

/// An outstanding lease.
struct Lease {
    worker: String,
    start: u32,
    end: u32,
    /// Cases in the lease still without a record.
    outstanding: BTreeSet<u32>,
    deadline: Instant,
    granted_at: Instant,
}

/// One registered worker.
struct WorkerInfo {
    last_seen: Instant,
    cases: u32,
}

/// What an authenticated connection is allowed to do.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    /// A full worker: leases, uploads, telemetry.
    Worker,
    /// A read-only observer: status requests only. Status peers skip
    /// the duplicate-name check and never register in the worker table,
    /// so any number may watch without perturbing dispatch.
    Status,
}

/// An authenticated peer (the handshake succeeded).
struct Peer {
    name: String,
    role: Role,
    /// Remaps this peer's stream-local span ids into the controller's
    /// metrics log — ids from different workers would otherwise collide
    /// in the merged stream.
    spans: BTreeMap<u64, u64>,
}

/// What the frame handler wants done with the connection.
enum Reply {
    /// Send and keep the conversation going.
    Send(Message),
    /// Send a structured refusal and close.
    Refuse(Refusal, String),
    /// Acknowledge a clean goodbye and close.
    AckAndClose,
}

/// The mutable serving state, separated from connection I/O so the event
/// loop can hold `&mut Conn` and `&mut State` at once.
struct State {
    dir: CampaignDir,
    config: CampaignConfig,
    options: ControllerOptions,
    records: Vec<Option<CaseRecord>>,
    pending: BTreeSet<u32>,
    leases: Vec<Lease>,
    workers: BTreeMap<String, WorkerInfo>,
    corpus_fps: HashSet<u64>,
    new_corpus: BTreeSet<String>,
    dispatched: u64,
    stage: PathBuf,
    started: Instant,
    /// Records already on disk when serving began — subtracted out of
    /// the ETA rate so a resumed campaign doesn't project from work it
    /// never performed.
    done_at_start: u32,
    heartbeat_hist: Histogram,
    lease_hist: Histogram,
}

/// One accepted connection.
struct Conn {
    framed: Framed,
    /// The authenticated peer, once the handshake succeeded.
    peer: Option<Peer>,
}

impl Controller {
    /// Binds the controller's listening socket (non-blocking accepts).
    ///
    /// # Errors
    ///
    /// Socket failure (address in use, permission).
    pub fn bind(addr: &str) -> io::Result<Controller> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Controller { listener })
    }

    /// The bound address (the OS-assigned port when bound to port 0).
    ///
    /// # Errors
    ///
    /// Socket failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves the campaign in `dir` until every case has a record (or
    /// the dispatch limit is reached and drained), then returns the
    /// report — identical to what the equivalent single-machine
    /// `campaign run` reports.
    ///
    /// A directory already holding a campaign is *resumed*: its stored
    /// configuration must fingerprint-match `config`, and only the
    /// missing cases are leased out.
    ///
    /// # Errors
    ///
    /// A drifted existing campaign, corrupt state, or I/O. Worker
    /// misbehavior is never an error here — bad peers are refused and
    /// disconnected, and their leases expire back into the pool.
    pub fn serve(
        &self,
        dir: &CampaignDir,
        config: &CampaignConfig,
        options: &ControllerOptions,
        progress: &mut dyn FleetProgress,
    ) -> Result<CampaignReport, FleetError> {
        let started = Instant::now();
        let config = if dir.manifest().exists() {
            let stored = dir.load()?;
            if stored.fingerprint() != config.fingerprint() {
                return Err(CampaignError::Config(format!(
                    "{} holds a campaign whose fingerprint {:016x} differs from the \
                     requested configuration's {:016x}",
                    dir.root().display(),
                    stored.fingerprint(),
                    config.fingerprint()
                ))
                .into());
            }
            stored
        } else {
            dir.init(config)?;
            config.clone()
        };
        let records = dir.load_cases(config.cases)?;
        let corpus_fps = corpus::load_all(&dir.corpus())?
            .iter()
            .map(|e| corpus::entry_fingerprint(&e.scenario))
            .collect();
        let pending: BTreeSet<u32> = records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(i, _)| i as u32)
            .collect();
        let done_at_start = records.iter().flatten().count() as u32;
        let mut state = State {
            dir: dir.clone(),
            config: config.clone(),
            options: options.clone(),
            records,
            pending,
            leases: Vec::new(),
            workers: BTreeMap::new(),
            corpus_fps,
            new_corpus: BTreeSet::new(),
            dispatched: 0,
            stage: dir
                .root()
                .join(format!(".fleet-stage-{}", std::process::id())),
            started,
            done_at_start,
            heartbeat_hist: Histogram::new(),
            lease_hist: Histogram::new(),
        };

        let mut conns: Vec<Conn> = Vec::new();
        let mut done_at: Option<Instant> = None;
        let mut last_gauges = Instant::now();
        loop {
            // New connections.
            loop {
                match self.listener.accept() {
                    Ok((stream, _addr)) => {
                        if let Ok(conn) = prepare(stream) {
                            conns.push(conn);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(FleetError::Io(e)),
                }
            }

            // Frames. A connection is dropped on EOF, I/O failure, an
            // undecodable frame, or a refusal.
            let mut closed: Vec<usize> = Vec::new();
            for (i, conn) in conns.iter_mut().enumerate() {
                loop {
                    match conn.framed.poll() {
                        Ok(Poll::Pending) => break,
                        Ok(Poll::Eof) => {
                            closed.push(i);
                            break;
                        }
                        Err(_) => {
                            closed.push(i);
                            break;
                        }
                        Ok(Poll::Frame(line)) => {
                            let reply = match crate::protocol::decode(&line) {
                                Ok(msg) => state.handle(&mut conn.peer, msg, progress),
                                Err(e) => Reply::Refuse(
                                    Refusal::BadFrame,
                                    format!("undecodable frame: {e}"),
                                ),
                            };
                            match reply {
                                Reply::Send(msg) => {
                                    if conn.framed.send(&msg).is_err() {
                                        closed.push(i);
                                        break;
                                    }
                                }
                                Reply::Refuse(reason, detail) => {
                                    let _ = conn.framed.send(&Message::Error { reason, detail });
                                    closed.push(i);
                                    break;
                                }
                                Reply::AckAndClose => {
                                    let _ = conn.framed.send(&Message::Ack);
                                    closed.push(i);
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            for i in closed.into_iter().rev() {
                let conn = conns.swap_remove(i);
                if let Some(peer) = conn.peer {
                    if peer.role == Role::Worker {
                        state.drop_worker(&peer.name, progress);
                    }
                }
            }

            state.reap_expired(progress);

            if last_gauges.elapsed() >= Duration::from_secs(1) {
                last_gauges = Instant::now();
                state.emit_gauges();
            }

            if state.done() {
                match done_at {
                    None => done_at = Some(Instant::now()),
                    Some(at) => {
                        if conns.is_empty() || at.elapsed() >= options.grace {
                            break;
                        }
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        let _ = std::fs::remove_dir_all(&state.stage);
        options.recorder.flush();
        progress.fleet_summary(&state.heartbeat_hist, &state.lease_hist);
        Ok(CampaignReport {
            config,
            replay: None,
            records: state.records,
            new_corpus: state.new_corpus.into_iter().collect(),
            elapsed: started.elapsed(),
        })
    }
}

/// Saturating microsecond cast for histogram samples.
fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Configures a freshly accepted stream: short read timeouts so the
/// event loop never blocks on one peer, and no Nagle delay (frames are
/// tiny and latency-sensitive).
fn prepare(stream: TcpStream) -> io::Result<Conn> {
    stream.set_read_timeout(Some(Duration::from_millis(5)))?;
    let _ = stream.set_nodelay(true);
    Ok(Conn {
        framed: Framed::new(stream)?,
        peer: None,
    })
}

impl State {
    fn handle(
        &mut self,
        who: &mut Option<Peer>,
        msg: Message,
        progress: &mut dyn FleetProgress,
    ) -> Reply {
        if who.is_none() {
            // The handshake: nothing but hello is meaningful yet.
            return match msg {
                Message::Hello {
                    protocol,
                    token,
                    worker,
                    fingerprint,
                    role,
                } => self.handle_hello(who, &protocol, &token, worker, fingerprint, role, progress),
                _ => Reply::Refuse(Refusal::BadFrame, "the first frame must be hello".into()),
            };
        }
        let peer = who.as_mut().expect("peer authenticated above");
        if peer.role == Role::Worker {
            // A heartbeat samples the age histogram *before* the refresh:
            // the measured gap is the distance between liveness signals.
            if matches!(msg, Message::Heartbeat) {
                if let Some(info) = self.workers.get(&peer.name) {
                    self.heartbeat_hist.record(micros(info.last_seen.elapsed()));
                }
            }
            self.touch(&peer.name);
        }
        match msg {
            Message::Hello { .. } => Reply::Refuse(
                Refusal::BadFrame,
                "hello arrived twice on one connection".into(),
            ),
            Message::StatusRequest => Reply::Send(Message::Status {
                body: self.status_document(),
            }),
            Message::Bye => Reply::AckAndClose,
            _ if peer.role == Role::Status => Reply::Refuse(
                Refusal::BadFrame,
                "a status connection is read-only: only status-request and bye are accepted".into(),
            ),
            Message::LeaseRequest => self.handle_lease_request(&peer.name),
            Message::Heartbeat => Reply::Send(Message::Ack),
            Message::Record { index, body } => {
                self.handle_record(&peer.name, index, &body, progress)
            }
            Message::Profile { index, body } => self.handle_profile(index, &body),
            Message::Flight { index, body } => self.handle_flight(index, &body),
            Message::Events { body } => {
                let name = peer.name.clone();
                self.handle_events(&name, &mut peer.spans, &body)
            }
            Message::Corpus {
                name,
                fingerprint,
                files,
            } => self.handle_corpus(&name, &fingerprint, &files),
            Message::Metrics { counters } => {
                for delta in counters {
                    self.options.recorder.count(&delta.src, &delta.key, delta.n);
                }
                Reply::Send(Message::Ack)
            }
            Message::Welcome { .. }
            | Message::Lease { .. }
            | Message::Wait { .. }
            | Message::Drained
            | Message::Ack
            | Message::Status { .. }
            | Message::Error { .. } => Reply::Refuse(
                Refusal::BadFrame,
                "controller-to-worker frame arrived from a worker".into(),
            ),
        }
    }

    /// The handshake refusal matrix, checked in its documented order:
    /// protocol version, token, unknown role, pinned fingerprint,
    /// duplicate name (the last skipped for read-only status peers).
    #[allow(clippy::too_many_arguments)]
    fn handle_hello(
        &mut self,
        who: &mut Option<Peer>,
        protocol: &str,
        token: &str,
        worker: String,
        fingerprint: Option<String>,
        role: Option<String>,
        progress: &mut dyn FleetProgress,
    ) -> Reply {
        if protocol != PROTOCOL {
            return Reply::Refuse(
                Refusal::ProtocolMismatch,
                format!("this controller speaks {PROTOCOL}"),
            );
        }
        if token != self.options.token {
            return Reply::Refuse(
                Refusal::BadToken,
                "shared token does not match the controller's".into(),
            );
        }
        let role = match role.as_deref() {
            None => Role::Worker,
            Some("status") => Role::Status,
            Some(other) => {
                return Reply::Refuse(
                    Refusal::BadFrame,
                    format!("unknown hello role {other:?} (this controller knows \"status\")"),
                )
            }
        };
        let fp = self.config.fingerprint();
        if let Some(pinned) = fingerprint {
            if u64::from_str_radix(&pinned, 16) != Ok(fp) {
                return Reply::Refuse(
                    Refusal::FingerprintDrift,
                    format!("controller campaign fingerprint is {fp:016x}"),
                );
            }
        }
        if role == Role::Worker {
            if self.workers.contains_key(&worker) {
                return Reply::Refuse(
                    Refusal::DuplicateWorker,
                    format!("a worker named {worker:?} is already connected"),
                );
            }
            self.workers.insert(
                worker.clone(),
                WorkerInfo {
                    last_seen: Instant::now(),
                    cases: 0,
                },
            );
            self.options
                .recorder
                .gauge("fleet", "workers_connected", self.workers.len() as u64);
            self.options
                .recorder
                .mark("fleet", "worker_joined", Some(&worker));
            progress.worker_joined(&worker);
        }
        *who = Some(Peer {
            name: worker,
            role,
            spans: BTreeMap::new(),
        });
        Reply::Send(Message::Welcome {
            protocol: PROTOCOL.into(),
            fingerprint: format!("{fp:016x}"),
            profile: self.options.profile,
            flight: self.options.flight,
            config: self.config.clone(),
        })
    }

    fn handle_lease_request(&mut self, worker: &str) -> Reply {
        if self.done() {
            return Reply::Send(Message::Drained);
        }
        let limit_reached = self
            .options
            .limit
            .is_some_and(|limit| self.dispatched >= u64::from(limit));
        if limit_reached || self.pending.is_empty() {
            // Everything is out with other workers (or granting has
            // stopped); the worker retries after a nap.
            return Reply::Send(Message::Wait {
                ms: self.options.wait_ms,
            });
        }
        // First contiguous run of pending cases, capped at the lease
        // size. Grants depend only on the grant *sequence*, never on
        // which worker asks — the root of counter determinism.
        let size = self.options.lease.max(1);
        let start = *self.pending.iter().next().expect("pending is non-empty");
        let mut end = start + 1;
        while end - start < size && self.pending.contains(&end) {
            end += 1;
        }
        let outstanding: BTreeSet<u32> = (start..end).collect();
        for index in &outstanding {
            self.pending.remove(index);
        }
        self.dispatched += u64::from(end - start);
        self.options.recorder.count("fleet", "leases_granted", 1);
        self.options
            .recorder
            .count("fleet", "cases_dispatched", u64::from(end - start));
        self.leases.push(Lease {
            worker: worker.to_string(),
            start,
            end,
            outstanding,
            deadline: Instant::now() + self.options.deadline,
            granted_at: Instant::now(),
        });
        Reply::Send(Message::Lease {
            start,
            end,
            deadline_ms: u64::try_from(self.options.deadline.as_millis()).unwrap_or(u64::MAX),
        })
    }

    fn handle_record(
        &mut self,
        worker: &str,
        index: u32,
        body: &str,
        progress: &mut dyn FleetProgress,
    ) -> Reply {
        if index >= self.config.cases {
            return Reply::Refuse(
                Refusal::BadUpload,
                format!(
                    "case {index} lies outside the campaign's {} case(s)",
                    self.config.cases
                ),
            );
        }
        if self.records[index as usize].is_some() {
            // Idempotent duplicate — a reassigned lease whose original
            // worker got there first, or a replayed upload after a
            // reconnect. The published record is canonical; a different
            // body contradicts the determinism contract.
            let published = std::fs::read(self.dir.case_path(index)).unwrap_or_default();
            if published != body.as_bytes() {
                return Reply::Refuse(
                    Refusal::BadUpload,
                    format!("case {index} differs from the already-published record"),
                );
            }
            return Reply::Send(Message::Ack);
        }
        let record = match rtl_dist::verify::parse_record(&self.config, index, body) {
            Ok(record) => record,
            Err(e) => return Reply::Refuse(Refusal::BadUpload, e),
        };
        if let Err(e) = write_atomic(&self.dir.case_path(index), body.as_bytes()) {
            // A publication failure is the controller's problem, not the
            // worker's — but the conversation cannot meaningfully go on.
            return Reply::Refuse(Refusal::BadUpload, format!("publication failed: {e}"));
        }
        self.records[index as usize] = Some(record.clone());
        self.pending.remove(&index);
        for lease in &mut self.leases {
            lease.outstanding.remove(&index);
        }
        let (drained, kept): (Vec<Lease>, Vec<Lease>) = std::mem::take(&mut self.leases)
            .into_iter()
            .partition(|l| l.outstanding.is_empty());
        self.leases = kept;
        for lease in drained {
            self.lease_hist.record(micros(lease.granted_at.elapsed()));
        }
        self.options.recorder.count("fleet", "records_accepted", 1);
        if let Some(info) = self.workers.get_mut(worker) {
            info.cases += 1;
        }
        let done = self.records.iter().flatten().count() as u32;
        progress.record_accepted(worker, &record, done, self.config.cases);
        Reply::Send(Message::Ack)
    }

    fn handle_profile(&mut self, index: u32, body: &str) -> Reply {
        if !self.options.profile {
            return Reply::Refuse(
                Refusal::BadUpload,
                "this campaign does not collect execution profiles".into(),
            );
        }
        if index >= self.config.cases {
            return Reply::Refuse(
                Refusal::BadUpload,
                format!(
                    "case {index} lies outside the campaign's {} case(s)",
                    self.config.cases
                ),
            );
        }
        if let Err(e) = rtl_core::Profile::parse(body) {
            return Reply::Refuse(Refusal::BadUpload, format!("case {index} profile: {e}"));
        }
        if self.records[index as usize].is_some() {
            // The record already committed this case; its sidecar (if
            // profiled) is already published and deterministic.
            return Reply::Send(Message::Ack);
        }
        // Sidecar-before-record discipline: the record stays the commit
        // point, so publishing the sidecar first is always safe.
        match write_atomic(&self.dir.profile_path(index), body.as_bytes()) {
            Ok(()) => Reply::Send(Message::Ack),
            Err(e) => Reply::Refuse(Refusal::BadUpload, format!("publication failed: {e}")),
        }
    }

    fn handle_flight(&mut self, index: u32, body: &str) -> Reply {
        if !self.options.flight {
            return Reply::Refuse(
                Refusal::BadUpload,
                "this campaign does not arm the flight recorder".into(),
            );
        }
        if index >= self.config.cases {
            return Reply::Refuse(
                Refusal::BadUpload,
                format!(
                    "case {index} lies outside the campaign's {} case(s)",
                    self.config.cases
                ),
            );
        }
        // The sidecar is an `asim2-events v1` excerpt: every line must
        // decode as an event before anything touches the directory.
        for line in body.lines().filter(|l| !l.trim().is_empty()) {
            if let Err(e) = Event::parse(line) {
                return Reply::Refuse(Refusal::BadUpload, format!("case {index} flight log: {e}"));
            }
        }
        if self.records[index as usize].is_some() {
            // The record already committed this case; its sidecar (if
            // any) is already published and deterministic.
            return Reply::Send(Message::Ack);
        }
        // Sidecar-before-record discipline, exactly like profiles.
        match write_atomic(&self.dir.flight_path(index), body.as_bytes()) {
            Ok(()) => Reply::Send(Message::Ack),
            Err(e) => Reply::Refuse(Refusal::BadUpload, format!("publication failed: {e}")),
        }
    }

    /// Folds a worker's streamed `asim2-events v1` log into the
    /// controller's metrics tap. Deterministic counters fold *untagged*
    /// — the controller-side totals must be byte-identical to a
    /// single-machine run's, and which worker executed a case is
    /// wall-clock trivia. Wall-clock events are re-emitted under
    /// `{worker}/{src}` provenance with span ids remapped into the
    /// controller's stream.
    fn handle_events(&mut self, worker: &str, spans: &mut BTreeMap<u64, u64>, body: &str) -> Reply {
        let mut events = Vec::new();
        for line in body.lines().filter(|l| !l.trim().is_empty()) {
            match Event::parse(line) {
                Ok(event) => events.push(event),
                Err(e) => return Reply::Refuse(Refusal::BadUpload, format!("events upload: {e}")),
            }
        }
        let recorder = &self.options.recorder;
        for event in events {
            match event {
                Event::Meta { .. } => {}
                Event::Counter { src, key, n } => recorder.count(&src, &key, n),
                Event::Gauge { src, key, value } => recorder.forward(&Event::Gauge {
                    src: format!("{worker}/{src}"),
                    key,
                    value,
                }),
                Event::Mark { src, key, detail } => recorder.forward(&Event::Mark {
                    src: format!("{worker}/{src}"),
                    key,
                    detail,
                }),
                Event::SpanEnter { src, key, id } => {
                    let mapped = recorder.span_id();
                    spans.insert(id, mapped);
                    recorder.forward(&Event::SpanEnter {
                        src: format!("{worker}/{src}"),
                        key,
                        id: mapped,
                    });
                }
                Event::SpanExit {
                    src,
                    key,
                    id,
                    micros,
                } => {
                    let mapped = spans.remove(&id).unwrap_or_else(|| recorder.span_id());
                    recorder.forward(&Event::SpanExit {
                        src: format!("{worker}/{src}"),
                        key,
                        id: mapped,
                        micros,
                    });
                }
            }
        }
        Reply::Send(Message::Ack)
    }

    fn handle_corpus(&mut self, name: &str, claimed: &str, files: &CorpusFiles) -> Reply {
        // The name becomes file stems under corpus/ — refuse anything
        // that could escape the directory or shadow temp siblings.
        let clean = !name.is_empty()
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
        if !clean {
            return Reply::Refuse(
                Refusal::BadUpload,
                format!("corpus entry name {name:?} is not a plain file stem"),
            );
        }
        let Ok(claimed_fp) = u64::from_str_radix(claimed, 16) else {
            return Reply::Refuse(
                Refusal::BadUpload,
                format!("corpus entry {name}: fingerprint is not hex"),
            );
        };
        // Stage the four files and run the full corpus load validation
        // (metadata schema, checkpoint recompute) before anything touches
        // the published corpus.
        let entry = match self.stage_corpus(name, files) {
            Ok(entry) => entry,
            Err(e) => {
                return Reply::Refuse(Refusal::BadUpload, format!("corpus entry {name}: {e}"))
            }
        };
        let fp = corpus::entry_fingerprint(&entry.scenario);
        if fp != claimed_fp {
            return Reply::Refuse(
                Refusal::BadUpload,
                format!("corpus entry {name}: claimed fingerprint does not match the files"),
            );
        }
        if !self.corpus_fps.insert(fp) {
            // Already archived (another worker found the same scenario).
            return Reply::Send(Message::Ack);
        }
        let publish = || -> io::Result<()> {
            let corpus_dir = self.dir.corpus();
            write_atomic(
                &corpus_dir.join(format!("{name}.asim")),
                files.asim.as_bytes(),
            )?;
            write_atomic(
                &corpus_dir.join(format!("{name}.stim")),
                files.stim.as_bytes(),
            )?;
            write_atomic(
                &corpus_dir.join(format!("{name}.ckpt")),
                files.ckpt.as_bytes(),
            )?;
            write_atomic(
                &corpus_dir.join(format!("{name}.json")),
                files.meta.as_bytes(),
            )?;
            Ok(())
        };
        if let Err(e) = publish() {
            self.corpus_fps.remove(&fp);
            return Reply::Refuse(Refusal::BadUpload, format!("publication failed: {e}"));
        }
        self.new_corpus.insert(name.to_string());
        self.options.recorder.count("fleet", "corpus_accepted", 1);
        Reply::Send(Message::Ack)
    }

    /// Writes the upload into a scratch directory and validates it with
    /// the standard corpus loader (which recomputes the reference
    /// checkpoint byte-for-byte).
    fn stage_corpus(&self, name: &str, files: &CorpusFiles) -> Result<corpus::CorpusEntry, String> {
        let _ = std::fs::remove_dir_all(&self.stage);
        let stage = |ext: &str, text: &str| {
            write_atomic(&self.stage.join(format!("{name}.{ext}")), text.as_bytes())
        };
        stage("asim", &files.asim)
            .and_then(|()| stage("stim", &files.stim))
            .and_then(|()| stage("ckpt", &files.ckpt))
            .and_then(|()| stage("json", &files.meta))
            .map_err(|e| e.to_string())?;
        let mut entries = corpus::load_all(&self.stage).map_err(|e| e.to_string())?;
        let _ = std::fs::remove_dir_all(&self.stage);
        match entries.len() {
            1 => {
                let entry = entries.remove(0);
                if entry.name != name {
                    return Err(format!("metadata names {:?}", entry.name));
                }
                Ok(entry)
            }
            n => Err(format!("staged {n} entries instead of 1")),
        }
    }

    /// Refreshes a worker's liveness and pushes its lease deadlines out.
    fn touch(&mut self, worker: &str) {
        let now = Instant::now();
        if let Some(info) = self.workers.get_mut(worker) {
            info.last_seen = now;
        }
        for lease in &mut self.leases {
            if lease.worker == worker {
                lease.deadline = now + self.options.deadline;
            }
        }
    }

    /// Releases a disconnected worker's leases back into the pool.
    fn drop_worker(&mut self, worker: &str, progress: &mut dyn FleetProgress) {
        self.workers.remove(worker);
        self.options
            .recorder
            .gauge("fleet", "workers_connected", self.workers.len() as u64);
        self.options
            .recorder
            .mark("fleet", "worker_left", Some(worker));
        progress.worker_left(worker);
        let (released, kept): (Vec<Lease>, Vec<Lease>) = std::mem::take(&mut self.leases)
            .into_iter()
            .partition(|l| l.worker == worker);
        self.leases = kept;
        for lease in released {
            self.pending.extend(&lease.outstanding);
        }
    }

    /// Expires overdue leases back into the pool (a worker that is
    /// half-dead — connected but silent past the deadline).
    fn reap_expired(&mut self, progress: &mut dyn FleetProgress) {
        let now = Instant::now();
        let (expired, kept): (Vec<Lease>, Vec<Lease>) = std::mem::take(&mut self.leases)
            .into_iter()
            .partition(|l| l.deadline <= now);
        self.leases = kept;
        for lease in expired {
            self.options.recorder.mark(
                "fleet",
                "lease_expired",
                Some(&format!("{} {}..{}", lease.worker, lease.start, lease.end)),
            );
            progress.lease_expired(&lease.worker, lease.start, lease.end);
            self.pending.extend(&lease.outstanding);
        }
    }

    /// Renders the `asim2-fleet-status v1` document answered to
    /// `status-request` frames: campaign identity and totals, the
    /// dispatch picture (outstanding leases with their deadlines), the
    /// connected workers with heartbeat ages and throughput counts, and
    /// a straight-line ETA from this serve's own completion rate
    /// (`null` until at least one case has finished here).
    fn status_document(&self) -> String {
        let now = Instant::now();
        let done = self.records.iter().flatten().count() as u32;
        let diverged = self
            .records
            .iter()
            .flatten()
            .filter(|r| matches!(r.status, CaseStatus::Diverged { .. }))
            .count();
        let elapsed_ms = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let fresh = u64::from(done.saturating_sub(self.done_at_start));
        let remaining = u64::from(self.config.cases - done);
        let eta_ms = if remaining == 0 {
            Json::num(0)
        } else if fresh == 0 || elapsed_ms == 0 {
            Json::Null
        } else {
            Json::num(elapsed_ms.saturating_mul(remaining) / fresh)
        };
        let leases: Vec<Json> = self
            .leases
            .iter()
            .map(|l| {
                let deadline_ms = l.deadline.saturating_duration_since(now).as_millis();
                Json::Obj(vec![
                    ("worker".into(), Json::str(l.worker.clone())),
                    ("start".into(), Json::num(l.start)),
                    ("end".into(), Json::num(l.end)),
                    ("outstanding".into(), Json::num(l.outstanding.len())),
                    (
                        "deadline_ms".into(),
                        Json::num(u64::try_from(deadline_ms).unwrap_or(u64::MAX)),
                    ),
                ])
            })
            .collect();
        let workers: Vec<Json> = self
            .workers
            .iter()
            .map(|(name, info)| {
                let age_ms = info.last_seen.elapsed().as_millis();
                Json::Obj(vec![
                    ("name".into(), Json::str(name.clone())),
                    (
                        "heartbeat_age_ms".into(),
                        Json::num(u64::try_from(age_ms).unwrap_or(u64::MAX)),
                    ),
                    ("cases".into(), Json::num(info.cases)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("format".into(), Json::str("asim2-fleet-status v1")),
            (
                "fingerprint".into(),
                Json::str(format!("{:016x}", self.config.fingerprint())),
            ),
            ("cases".into(), Json::num(self.config.cases)),
            ("done".into(), Json::num(done)),
            ("pending".into(), Json::num(self.pending.len())),
            ("dispatched".into(), Json::num(self.dispatched)),
            ("diverged".into(), Json::num(diverged)),
            ("elapsed_ms".into(), Json::num(elapsed_ms)),
            ("eta_ms".into(), eta_ms),
            ("leases".into(), Json::Arr(leases)),
            ("workers".into(), Json::Arr(workers)),
        ])
        .render()
    }

    fn emit_gauges(&self) {
        if !self.options.recorder.enabled() {
            return;
        }
        self.options
            .recorder
            .gauge("fleet", "workers_connected", self.workers.len() as u64);
        let age = self
            .workers
            .values()
            .map(|w| w.last_seen.elapsed().as_millis())
            .max()
            .unwrap_or(0);
        self.options.recorder.gauge(
            "fleet",
            "heartbeat_age_ms",
            u64::try_from(age).unwrap_or(u64::MAX),
        );
    }

    /// The campaign needs nothing further: every case has a record, or
    /// granting stopped at the dispatch limit and the outstanding leases
    /// drained.
    fn done(&self) -> bool {
        if !self.leases.is_empty() {
            return false;
        }
        let limit_reached = self
            .options
            .limit
            .is_some_and(|limit| self.dispatched >= u64::from(limit));
        self.pending.is_empty() || limit_reached
    }
}
