//! The fleet worker: leases case ranges from a controller, executes them
//! with the standard `rtl-campaign` pool in a local scratch directory,
//! and uploads every artifact byte-verbatim.
//!
//! The worker is deliberately thin. All execution — engine registries,
//! per-case seeds, shrinking, profiling — is the campaign runner's,
//! scoped to the lease via `RunOptions.case_range`, so case `i` keeps
//! its global index and derived seed and the uploaded record is the
//! exact file a single-machine run would have published. The scratch
//! directory is a normal campaign directory (resumable, inspectable) and
//! survives reconnects: records already on disk are simply re-uploaded,
//! which the controller acknowledges idempotently.

use crate::error::FleetError;
use crate::protocol::{CorpusFiles, Framed, Message, PROTOCOL};
use rtl_campaign::json::Json;
use rtl_campaign::state::CaseStatus;
use rtl_campaign::{CampaignDir, CampaignError, CaseRecord, Progress, RunOptions};
use rtl_obs::Recorder;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Worker knobs. None affect case outcomes.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// The shared campaign token.
    pub token: String,
    /// This worker's fleet-unique name.
    pub name: String,
    /// Threads for the lease's local campaign pool.
    pub threads: usize,
    /// The local scratch campaign directory (created on first lease,
    /// validated against the controller's fingerprint on reuse).
    pub scratch: PathBuf,
    /// Refuse to work unless the controller's campaign fingerprint
    /// equals this (drift pinning; refusal happens in the handshake).
    pub pin: Option<u64>,
    /// Fault injection: deliberately drop the connection after this many
    /// record uploads — the reassignment test's worker-death lever.
    pub abandon_after: Option<u32>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            token: String::new(),
            name: "worker".into(),
            threads: 2,
            scratch: std::env::temp_dir().join("asim2-fleet-scratch"),
            pin: None,
            abandon_after: None,
        }
    }
}

/// What one worker session accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// The worker's name.
    pub name: String,
    /// The campaign fingerprint worked on.
    pub fingerprint: u64,
    /// Leases completed.
    pub leases: u32,
    /// Case records uploaded (including idempotent re-uploads).
    pub cases: u32,
    /// Uploaded cases whose lanes diverged.
    pub diverged: u32,
}

impl std::fmt::Display for WorkerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fleet worker {}: {} lease(s), {} case(s) uploaded, {} diverged \
             (campaign {:016x})",
            self.name, self.leases, self.cases, self.diverged, self.fingerprint
        )
    }
}

/// Rate-limited liveness signals sent from inside the lease's campaign
/// run (the `Progress` callback runs on the calling thread, so the
/// request/response conversation stays strictly sequential).
struct HeartbeatProgress<'a> {
    framed: &'a mut Framed,
    last: Instant,
    error: Option<FleetError>,
}

impl Progress for HeartbeatProgress<'_> {
    fn case_done(&mut self, _record: &CaseRecord, _done: u32, _total: u32) {
        if self.error.is_some() || self.last.elapsed() < Duration::from_secs(1) {
            return;
        }
        self.last = Instant::now();
        match self.framed.call(&Message::Heartbeat) {
            Ok(Message::Ack) => {}
            Ok(Message::Error { reason, detail }) => {
                self.error = Some(FleetError::Refused { reason, detail });
            }
            Ok(other) => {
                self.error = Some(FleetError::Protocol(format!(
                    "heartbeat answered with {:?}",
                    other.kind()
                )));
            }
            Err(e) => self.error = Some(e),
        }
    }
}

/// Connects to a controller, works leases until drained, and returns a
/// session report.
///
/// # Errors
///
/// A handshake refusal ([`FleetError::Refused`] with the controller's
/// named reason), a drifted scratch directory, campaign execution
/// failure, protocol violations, or I/O. [`FleetError::Abandoned`] when
/// `abandon_after` tripped.
pub fn work(addr: &str, options: &WorkerOptions) -> Result<WorkerReport, FleetError> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut framed = Framed::new(stream)?;

    let hello = Message::Hello {
        protocol: PROTOCOL.into(),
        token: options.token.clone(),
        worker: options.name.clone(),
        fingerprint: options.pin.map(|fp| format!("{fp:016x}")),
        role: None,
    };
    let (config, profile, flight, fingerprint) = match framed.call(&hello)? {
        Message::Welcome {
            fingerprint,
            profile,
            flight,
            config,
            ..
        } => {
            let fp = config.fingerprint();
            if u64::from_str_radix(&fingerprint, 16) != Ok(fp) {
                return Err(FleetError::Protocol(
                    "controller's fingerprint does not match its own configuration".into(),
                ));
            }
            (config, profile, flight, fp)
        }
        Message::Error { reason, detail } => return Err(FleetError::Refused { reason, detail }),
        other => {
            return Err(FleetError::Protocol(format!(
                "handshake answered with {:?}",
                other.kind()
            )))
        }
    };

    // The scratch is a normal campaign directory pinned to the
    // controller's configuration; a drifted leftover is refused, not
    // silently overwritten.
    let dir = CampaignDir::new(&options.scratch);
    if dir.manifest().exists() {
        let stored = dir.load()?;
        if stored.fingerprint() != fingerprint {
            return Err(CampaignError::Config(format!(
                "{} holds a different campaign (fingerprint {:016x}, controller serves \
                 {fingerprint:016x})",
                options.scratch.display(),
                stored.fingerprint()
            ))
            .into());
        }
    } else {
        dir.init(&config)?;
    }

    let mut report = WorkerReport {
        name: options.name.clone(),
        fingerprint,
        leases: 0,
        cases: 0,
        diverged: 0,
    };
    let mut uploads = 0u32;
    loop {
        match framed.call(&Message::LeaseRequest)? {
            Message::Lease { start, end, .. } => {
                run_lease(
                    &mut framed,
                    &dir,
                    options,
                    profile,
                    flight,
                    start,
                    end,
                    &mut uploads,
                    &mut report,
                )?;
                report.leases += 1;
            }
            Message::Wait { ms } => std::thread::sleep(Duration::from_millis(ms.min(2_000))),
            Message::Drained => {
                // A clean goodbye; tolerate a controller that has already
                // torn down by the time the ack would arrive.
                let _ = framed.call(&Message::Bye);
                return Ok(report);
            }
            Message::Error { reason, detail } => {
                return Err(FleetError::Refused { reason, detail })
            }
            other => {
                return Err(FleetError::Protocol(format!(
                    "lease request answered with {:?}",
                    other.kind()
                )))
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_lease(
    framed: &mut Framed,
    dir: &CampaignDir,
    options: &WorkerOptions,
    profile: bool,
    flight: bool,
    start: u32,
    end: u32,
    uploads: &mut u32,
    report: &mut WorkerReport,
) -> Result<(), FleetError> {
    // A fresh in-memory recorder per lease: its full event log is this
    // lease's telemetry, streamed to the controller afterwards so the
    // controller-side counter fold equals a single-machine run's.
    let (recorder, log) = Recorder::memory();
    let run = RunOptions {
        workers: options.threads.max(1),
        limit: None,
        case_checkpoint: false,
        case_range: Some(start..end),
        recorder: recorder.clone(),
        profile,
        flight,
    };
    let mut hb = HeartbeatProgress {
        framed,
        last: Instant::now(),
        error: None,
    };
    let lease_report = rtl_campaign::resume(dir, &run, &mut hb)?;
    if let Some(e) = hb.error.take() {
        return Err(e);
    }
    recorder.flush();

    // Upload the lease's artifacts byte-verbatim from disk — the same
    // files a single-machine run publishes, so the controller's
    // directory diffs clean. The profile sidecar goes first, preserving
    // the sidecar-before-record publication discipline.
    for index in start..end {
        if profile {
            let body = std::fs::read_to_string(dir.profile_path(index))
                .map_err(|e| FleetError::Campaign(CampaignError::Io(e)))?;
            expect_ack(framed, &Message::Profile { index, body }, "profile upload")?;
        }
        // The flight sidecar exists exactly when the case did not agree
        // — deterministically, so its presence needs no bookkeeping.
        if flight && dir.flight_path(index).exists() {
            let body = std::fs::read_to_string(dir.flight_path(index))
                .map_err(|e| FleetError::Campaign(CampaignError::Io(e)))?;
            expect_ack(framed, &Message::Flight { index, body }, "flight upload")?;
        }
        // A divergence's shrunk corpus entry goes before the record as
        // well: the record is the commit point, so a worker killed
        // between the two must not leave an accepted record whose
        // corpus entry was never published. The controller dedups
        // entries idempotently by scenario fingerprint, across workers.
        if let Some(Some(record)) = lease_report.records.get(index as usize) {
            if let CaseStatus::Diverged { corpus, .. } = &record.status {
                report.diverged += 1;
                if let Some(name) = corpus {
                    let msg = corpus_message(dir, name)?;
                    expect_ack(framed, &msg, "corpus upload")?;
                }
            }
        }
        let body = std::fs::read_to_string(dir.case_path(index))
            .map_err(|e| FleetError::Campaign(CampaignError::Io(e)))?;
        expect_ack(framed, &Message::Record { index, body }, "record upload")?;
        *uploads += 1;
        report.cases += 1;
        if options.abandon_after.is_some_and(|n| *uploads >= n) {
            return Err(FleetError::Abandoned);
        }
    }

    // The lease's full local event log, streamed to the controller:
    // deterministic counters fold into the campaign-wide metrics log
    // untagged, wall-clock events are re-emitted under this worker's
    // provenance.
    let body = log.text();
    if !body.trim().is_empty() {
        expect_ack(framed, &Message::Events { body }, "events upload")?;
    }
    Ok(())
}

/// Reads a corpus entry's four files and claimed fingerprint (the
/// `design_fp` the campaign layer stamped into the metadata, passed
/// through verbatim).
fn corpus_message(dir: &CampaignDir, name: &str) -> Result<Message, FleetError> {
    let read = |ext: &str| {
        std::fs::read_to_string(dir.corpus().join(format!("{name}.{ext}")))
            .map_err(|e| FleetError::Campaign(CampaignError::Io(e)))
    };
    let files = CorpusFiles {
        asim: read("asim")?,
        stim: read("stim")?,
        ckpt: read("ckpt")?,
        meta: read("json")?,
    };
    let fingerprint = Json::parse(&files.meta)
        .ok()
        .as_ref()
        .and_then(|doc| {
            doc.get("design_fp")
                .and_then(Json::as_str)
                .map(String::from)
        })
        .ok_or_else(|| {
            FleetError::Protocol(format!("corpus entry {name} has no design_fp metadata"))
        })?;
    Ok(Message::Corpus {
        name: name.to_string(),
        fingerprint,
        files,
    })
}

fn expect_ack(framed: &mut Framed, msg: &Message, what: &str) -> Result<(), FleetError> {
    match framed.call(msg)? {
        Message::Ack => Ok(()),
        Message::Error { reason, detail } => Err(FleetError::Refused { reason, detail }),
        other => Err(FleetError::Protocol(format!(
            "{what} answered with {:?}",
            other.kind()
        ))),
    }
}
