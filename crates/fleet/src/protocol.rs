//! The `asim2-fleet v1` wire protocol: typed messages over
//! newline-delimited JSON frames.
//!
//! A fleet conversation is strictly request/response on one TCP stream:
//! the worker opens with [`Message::Hello`] (protocol version, shared
//! token, worker name, optionally a pinned campaign fingerprint), the
//! controller answers [`Message::Welcome`] (the campaign configuration
//! and its fingerprint) or a structured [`Message::Error`] refusal, and
//! from then on every worker frame gets exactly one controller frame
//! back. Frames are single-line JSON documents rendered *compactly* and
//! byte-stably — refusals are part of the protocol's golden surface, so
//! two controllers refusing the same handshake emit identical bytes.
//!
//! The document model reuses the campaign's hand-rolled
//! [`Json`]; no serde, no framing library.
//! String escaping guarantees a rendered frame never contains a raw
//! newline, so `\n` is an unambiguous frame delimiter.

use crate::error::FleetError;
use rtl_campaign::json::Json;
use rtl_campaign::CampaignConfig;
use std::io::{Read, Write};
use std::net::TcpStream;

/// The protocol version line carried in every handshake; a controller
/// refuses any other value with a `protocol-mismatch` error frame.
pub const PROTOCOL: &str = "asim2-fleet v1";

/// Upper bound on one frame's length in bytes. Record and corpus bodies
/// ride inside frames as JSON strings; campaign artifacts are small
/// text documents, so anything near this bound is a corrupt or hostile
/// peer, not a real upload.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// A structured refusal reason with a stable one-token label — the
/// golden surface of the handshake refusal matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// The peer speaks a different protocol version.
    ProtocolMismatch,
    /// The shared token does not match the controller's.
    BadToken,
    /// The worker pinned a campaign fingerprint that is not the
    /// controller's — a drifted manifest.
    FingerprintDrift,
    /// A worker with this name is already connected.
    DuplicateWorker,
    /// The frame could not be decoded, or arrived out of sequence.
    BadFrame,
    /// An uploaded artifact failed validation against the campaign
    /// configuration (wrong seed, out-of-range index, corrupt body).
    BadUpload,
}

impl Refusal {
    /// The stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            Refusal::ProtocolMismatch => "protocol-mismatch",
            Refusal::BadToken => "bad-token",
            Refusal::FingerprintDrift => "fingerprint-drift",
            Refusal::DuplicateWorker => "duplicate-worker",
            Refusal::BadFrame => "bad-frame",
            Refusal::BadUpload => "bad-upload",
        }
    }

    /// Parses a wire label.
    pub fn parse(label: &str) -> Option<Refusal> {
        Some(match label {
            "protocol-mismatch" => Refusal::ProtocolMismatch,
            "bad-token" => Refusal::BadToken,
            "fingerprint-drift" => Refusal::FingerprintDrift,
            "duplicate-worker" => Refusal::DuplicateWorker,
            "bad-frame" => Refusal::BadFrame,
            "bad-upload" => Refusal::BadUpload,
            _ => return None,
        })
    }
}

/// One deterministic counter delta forwarded from a worker's local
/// event log to the controller's recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Source component (`campaign`, `lockstep`, `profile`, ...).
    pub src: String,
    /// Counter key.
    pub key: String,
    /// The increment (deltas sum, so forwarding preserves fold totals).
    pub n: u64,
}

/// The four files of one corpus entry, shipped as text (every campaign
/// artifact — spec, stimulus, session checkpoint, metadata — is a text
/// document).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusFiles {
    /// The shrunk `.asim` specification source.
    pub asim: String,
    /// The `.stim` stimulus script.
    pub stim: String,
    /// The `.ckpt` reference session checkpoint.
    pub ckpt: String,
    /// The `.json` entry metadata.
    pub meta: String,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → controller: the handshake opener.
    Hello {
        /// Must equal [`PROTOCOL`].
        protocol: String,
        /// The shared campaign token.
        token: String,
        /// A fleet-unique worker name.
        worker: String,
        /// An optionally pinned campaign-manifest fingerprint (hex); the
        /// controller refuses with `fingerprint-drift` when it differs.
        fingerprint: Option<String>,
        /// The peer's requested role. Absent means a full worker (the
        /// field is omitted from the frame, keeping pre-role handshakes
        /// byte-identical); `"status"` requests the read-only live-query
        /// surface. An unknown role is refused with `bad-frame`.
        role: Option<String>,
    },
    /// Controller → worker: handshake accepted; carries the campaign.
    Welcome {
        /// The controller's protocol version.
        protocol: String,
        /// The campaign-manifest fingerprint (hex).
        fingerprint: String,
        /// Whether workers must collect per-case execution profiles.
        profile: bool,
        /// Whether workers must arm the divergence flight recorder and
        /// upload `case-N.flight.jsonl` sidecars.
        flight: bool,
        /// The full campaign configuration; the worker recomputes the
        /// fingerprint from it and refuses a mismatch.
        config: CampaignConfig,
    },
    /// Worker → controller: ready for a lease.
    LeaseRequest,
    /// Controller → worker: run cases `start..end` before the deadline.
    Lease {
        /// First case index (inclusive).
        start: u32,
        /// Last case index (exclusive).
        end: u32,
        /// Deadline in milliseconds; an overdue lease is reassigned.
        deadline_ms: u64,
    },
    /// Controller → worker: nothing to lease right now (everything is
    /// out with other workers); retry after `ms`.
    Wait {
        /// Suggested retry delay in milliseconds.
        ms: u64,
    },
    /// Controller → worker: the campaign needs nothing further from
    /// this worker; disconnect.
    Drained,
    /// Worker → controller: liveness signal between case completions.
    Heartbeat,
    /// Worker → controller: one completed case record, byte-verbatim.
    Record {
        /// Global case index.
        index: u32,
        /// The record file's exact text.
        body: String,
    },
    /// Worker → controller: one execution-profile sidecar,
    /// byte-verbatim (sent *before* its case record, preserving the
    /// sidecar-before-record publication discipline).
    Profile {
        /// Global case index.
        index: u32,
        /// The sidecar file's exact text.
        body: String,
    },
    /// Worker → controller: one shrunk corpus entry.
    Corpus {
        /// Entry name (`seed-N`).
        name: String,
        /// The claimed entry fingerprint (hex); the controller
        /// revalidates it from the files before publication.
        fingerprint: String,
        /// The entry's four files.
        files: CorpusFiles,
    },
    /// Worker → controller: deterministic counter deltas from the
    /// lease's local event log.
    Metrics {
        /// The deltas, in log order.
        counters: Vec<CounterDelta>,
    },
    /// Worker → controller: the lease's complete local `asim2-events v1`
    /// log, streamed verbatim. The controller folds the deterministic
    /// counters into its own log untagged (totals stay byte-identical to
    /// a single-machine run) and re-emits the wall-clock events with
    /// worker provenance. Supersedes [`Message::Metrics`], which only
    /// carried the counters.
    Events {
        /// The event log's exact text (meta header included).
        body: String,
    },
    /// Worker → controller: one flight-recorder sidecar, byte-verbatim
    /// (sent *before* its case record, like [`Message::Profile`]).
    Flight {
        /// Global case index.
        index: u32,
        /// The sidecar file's exact text.
        body: String,
    },
    /// Status client → controller: one live-status query.
    StatusRequest,
    /// Controller → status client: the versioned status document.
    Status {
        /// The `asim2-fleet-status v1` JSON document text.
        body: String,
    },
    /// Controller → worker: the previous frame was accepted.
    Ack,
    /// Worker → controller: clean goodbye.
    Bye,
    /// Controller → worker: a structured refusal. The connection closes
    /// after this frame.
    Error {
        /// The stable refusal label.
        reason: Refusal,
        /// Human-readable detail (byte-stable for the golden matrix).
        detail: String,
    },
}

impl Message {
    /// The frame's `type` discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::Welcome { .. } => "welcome",
            Message::LeaseRequest => "lease-request",
            Message::Lease { .. } => "lease",
            Message::Wait { .. } => "wait",
            Message::Drained => "drained",
            Message::Heartbeat => "heartbeat",
            Message::Record { .. } => "record",
            Message::Profile { .. } => "profile",
            Message::Corpus { .. } => "corpus",
            Message::Metrics { .. } => "metrics",
            Message::Events { .. } => "events",
            Message::Flight { .. } => "flight",
            Message::StatusRequest => "status-request",
            Message::Status { .. } => "status",
            Message::Ack => "ack",
            Message::Bye => "bye",
            Message::Error { .. } => "error",
        }
    }

    /// Serializes the message as a document.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("type".to_string(), Json::str(self.kind()))];
        match self {
            Message::Hello {
                protocol,
                token,
                worker,
                fingerprint,
                role,
            } => {
                pairs.push(("protocol".into(), Json::str(protocol)));
                pairs.push(("token".into(), Json::str(token)));
                pairs.push(("worker".into(), Json::str(worker)));
                if let Some(fp) = fingerprint {
                    pairs.push(("fingerprint".into(), Json::str(fp)));
                }
                if let Some(role) = role {
                    pairs.push(("role".into(), Json::str(role)));
                }
            }
            Message::Welcome {
                protocol,
                fingerprint,
                profile,
                flight,
                config,
            } => {
                pairs.push(("protocol".into(), Json::str(protocol)));
                pairs.push(("fingerprint".into(), Json::str(fingerprint)));
                pairs.push(("profile".into(), Json::Bool(*profile)));
                pairs.push(("flight".into(), Json::Bool(*flight)));
                pairs.push(("config".into(), config.to_json()));
            }
            Message::Lease {
                start,
                end,
                deadline_ms,
            } => {
                pairs.push(("start".into(), Json::num(start)));
                pairs.push(("end".into(), Json::num(end)));
                pairs.push(("deadline_ms".into(), Json::num(deadline_ms)));
            }
            Message::Wait { ms } => pairs.push(("ms".into(), Json::num(ms))),
            Message::Record { index, body }
            | Message::Profile { index, body }
            | Message::Flight { index, body } => {
                pairs.push(("index".into(), Json::num(index)));
                pairs.push(("body".into(), Json::str(body)));
            }
            Message::Events { body } | Message::Status { body } => {
                pairs.push(("body".into(), Json::str(body)));
            }
            Message::Corpus {
                name,
                fingerprint,
                files,
            } => {
                pairs.push(("name".into(), Json::str(name)));
                pairs.push(("fingerprint".into(), Json::str(fingerprint)));
                pairs.push(("asim".into(), Json::str(&files.asim)));
                pairs.push(("stim".into(), Json::str(&files.stim)));
                pairs.push(("ckpt".into(), Json::str(&files.ckpt)));
                pairs.push(("meta".into(), Json::str(&files.meta)));
            }
            Message::Metrics { counters } => {
                pairs.push((
                    "counters".into(),
                    Json::Arr(
                        counters
                            .iter()
                            .map(|c| {
                                Json::Obj(vec![
                                    ("src".into(), Json::str(&c.src)),
                                    ("key".into(), Json::str(&c.key)),
                                    ("n".into(), Json::num(c.n)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Message::Error { reason, detail } => {
                pairs.push(("reason".into(), Json::str(reason.label())));
                pairs.push(("detail".into(), Json::str(detail)));
            }
            Message::LeaseRequest
            | Message::Drained
            | Message::Heartbeat
            | Message::StatusRequest
            | Message::Ack
            | Message::Bye => {}
        }
        Json::Obj(pairs)
    }

    /// Deserializes a message.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<Message, String> {
        let text = |name: &str| {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {name:?}"))
        };
        let num = |name: &str| {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field {name:?}"))
        };
        let index = |name: &str| {
            num(name).and_then(|n| u32::try_from(n).map_err(|_| format!("{name} out of range")))
        };
        Ok(match text("type")?.as_str() {
            "hello" => Message::Hello {
                protocol: text("protocol")?,
                token: text("token")?,
                worker: text("worker")?,
                fingerprint: match doc.get("fingerprint") {
                    Some(Json::Str(fp)) => Some(fp.clone()),
                    None => None,
                    Some(_) => return Err("field \"fingerprint\" is not a string".into()),
                },
                role: match doc.get("role") {
                    Some(Json::Str(role)) => Some(role.clone()),
                    None => None,
                    Some(_) => return Err("field \"role\" is not a string".into()),
                },
            },
            "welcome" => Message::Welcome {
                protocol: text("protocol")?,
                fingerprint: text("fingerprint")?,
                profile: doc
                    .get("profile")
                    .and_then(Json::as_bool)
                    .ok_or("missing boolean field \"profile\"")?,
                flight: doc
                    .get("flight")
                    .and_then(Json::as_bool)
                    .ok_or("missing boolean field \"flight\"")?,
                config: CampaignConfig::from_json(
                    doc.get("config").ok_or("missing field \"config\"")?,
                )?,
            },
            "lease-request" => Message::LeaseRequest,
            "lease" => Message::Lease {
                start: index("start")?,
                end: index("end")?,
                deadline_ms: num("deadline_ms")?,
            },
            "wait" => Message::Wait { ms: num("ms")? },
            "drained" => Message::Drained,
            "heartbeat" => Message::Heartbeat,
            "record" => Message::Record {
                index: index("index")?,
                body: text("body")?,
            },
            "profile" => Message::Profile {
                index: index("index")?,
                body: text("body")?,
            },
            "corpus" => Message::Corpus {
                name: text("name")?,
                fingerprint: text("fingerprint")?,
                files: CorpusFiles {
                    asim: text("asim")?,
                    stim: text("stim")?,
                    ckpt: text("ckpt")?,
                    meta: text("meta")?,
                },
            },
            "metrics" => {
                let items = doc
                    .get("counters")
                    .and_then(Json::as_arr)
                    .ok_or("missing array field \"counters\"")?;
                let counters = items
                    .iter()
                    .map(|c| {
                        Ok(CounterDelta {
                            src: c
                                .get("src")
                                .and_then(Json::as_str)
                                .ok_or("counter without src")?
                                .to_string(),
                            key: c
                                .get("key")
                                .and_then(Json::as_str)
                                .ok_or("counter without key")?
                                .to_string(),
                            n: c.get("n")
                                .and_then(Json::as_u64)
                                .ok_or("counter without n")?,
                        })
                    })
                    .collect::<Result<Vec<_>, &str>>()
                    .map_err(str::to_string)?;
                Message::Metrics { counters }
            }
            "events" => Message::Events {
                body: text("body")?,
            },
            "flight" => Message::Flight {
                index: index("index")?,
                body: text("body")?,
            },
            "status-request" => Message::StatusRequest,
            "status" => Message::Status {
                body: text("body")?,
            },
            "ack" => Message::Ack,
            "bye" => Message::Bye,
            "error" => Message::Error {
                reason: text("reason")
                    .ok()
                    .as_deref()
                    .and_then(Refusal::parse)
                    .ok_or("error frame with unknown reason")?,
                detail: text("detail")?,
            },
            other => return Err(format!("unknown frame type {other:?}")),
        })
    }
}

/// Encodes a message as one byte-stable frame line (no trailing
/// newline): compact JSON, keys in declaration order.
pub fn encode(msg: &Message) -> String {
    let mut out = String::new();
    write_compact(&msg.to_json(), &mut out);
    out
}

/// Decodes one frame line.
///
/// # Errors
///
/// Malformed JSON or an invalid message shape.
pub fn decode(line: &str) -> Result<Message, String> {
    Message::from_json(&Json::parse(line.trim_end())?)
}

/// Renders a document on a single line: `{"k":v,...}` with no spaces —
/// the frame encoding (the pretty renderer in `json.rs` is for files).
fn write_compact(doc: &Json, out: &mut String) {
    match doc {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => out.push_str(n),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (key, value)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_compact(value, out);
            }
            out.push('}');
        }
    }
}

/// JSON string escaping (mirrors the campaign renderer: control
/// characters — newlines included — are always escaped, which is what
/// makes `\n` a safe frame delimiter).
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One poll of the frame reader.
#[derive(Debug)]
pub enum Poll {
    /// A complete frame line arrived.
    Frame(String),
    /// No complete frame yet (the read timed out mid-frame or before
    /// one); the partial data stays buffered.
    Pending,
    /// The peer closed the stream.
    Eof,
}

/// A framed protocol stream: newline-delimited frames over TCP, with a
/// hand-rolled line buffer so *read timeouts never lose partial
/// frames* (a `BufReader::read_line` interrupted by a timeout may drop
/// bytes; the controller polls with timeouts to notice shutdown).
pub struct Framed {
    reader: TcpStream,
    writer: TcpStream,
    buf: Vec<u8>,
}

impl Framed {
    /// Wraps a connected stream.
    ///
    /// # Errors
    ///
    /// Failure to clone the stream handle.
    pub fn new(stream: TcpStream) -> std::io::Result<Framed> {
        let writer = stream.try_clone()?;
        Ok(Framed {
            reader: stream,
            writer,
            buf: Vec::new(),
        })
    }

    /// The underlying stream (for timeouts and shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.reader
    }

    /// Sends one message as a frame line.
    ///
    /// # Errors
    ///
    /// Stream failure.
    pub fn send(&mut self, msg: &Message) -> std::io::Result<()> {
        let mut line = encode(msg);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Polls for the next frame line. With a read timeout set on the
    /// stream, returns [`Poll::Pending`] when the timeout elapses;
    /// without one, blocks until a frame or EOF.
    ///
    /// # Errors
    ///
    /// Stream failure, or a frame exceeding [`MAX_FRAME`].
    pub fn poll(&mut self) -> std::io::Result<Poll> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let line = std::mem::replace(&mut self.buf, rest);
                let line =
                    String::from_utf8(line).map_err(|_| std::io::Error::other("non-utf8 frame"))?;
                return Ok(Poll::Frame(line));
            }
            if self.buf.len() > MAX_FRAME {
                return Err(std::io::Error::other("frame exceeds MAX_FRAME"));
            }
            let mut chunk = [0u8; 64 * 1024];
            match self.reader.read(&mut chunk) {
                Ok(0) => return Ok(Poll::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(Poll::Pending)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Blocks until the next decoded message (the worker side, where no
    /// read timeout is set).
    ///
    /// # Errors
    ///
    /// EOF, stream failure, or an undecodable frame.
    pub fn recv(&mut self) -> Result<Message, FleetError> {
        loop {
            match self.poll().map_err(FleetError::Io)? {
                Poll::Frame(line) => {
                    return decode(&line)
                        .map_err(|e| FleetError::Protocol(format!("bad frame: {e}")))
                }
                Poll::Pending => continue,
                Poll::Eof => {
                    return Err(FleetError::Protocol(
                        "connection closed mid-conversation".into(),
                    ))
                }
            }
        }
    }

    /// Sends `msg` and blocks for the reply.
    ///
    /// # Errors
    ///
    /// See [`Framed::send`] and [`Framed::recv`].
    pub fn call(&mut self, msg: &Message) -> Result<Message, FleetError> {
        self.send(msg).map_err(FleetError::Io)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_round_trips() {
        let samples = vec![
            Message::Hello {
                protocol: PROTOCOL.into(),
                token: "secret".into(),
                worker: "w1".into(),
                fingerprint: None,
                role: None,
            },
            Message::Hello {
                protocol: PROTOCOL.into(),
                token: "secret".into(),
                worker: "w2".into(),
                fingerprint: Some("00ff00ff00ff00ff".into()),
                role: Some("status".into()),
            },
            Message::Welcome {
                protocol: PROTOCOL.into(),
                fingerprint: "0123456789abcdef".into(),
                profile: true,
                flight: true,
                config: CampaignConfig::default(),
            },
            Message::LeaseRequest,
            Message::Lease {
                start: 8,
                end: 16,
                deadline_ms: 60_000,
            },
            Message::Wait { ms: 200 },
            Message::Drained,
            Message::Heartbeat,
            Message::Record {
                index: 3,
                body: "{\n  \"index\": 3\n}\n".into(),
            },
            Message::Profile {
                index: 3,
                body: "asim2-profile v1\n".into(),
            },
            Message::Corpus {
                name: "seed-7".into(),
                fingerprint: "deadbeefdeadbeef".into(),
                files: CorpusFiles {
                    asim: "# spec\n".into(),
                    stim: "1\n2\n".into(),
                    ckpt: "asim2 checkpoint v1\n".into(),
                    meta: "{}\n".into(),
                },
            },
            Message::Metrics {
                counters: vec![CounterDelta {
                    src: "campaign".into(),
                    key: "cases_executed".into(),
                    n: 8,
                }],
            },
            Message::Events {
                body: "{\"v\":1,\"e\":\"meta\",\"format\":\"asim2-events v1\"}\n".into(),
            },
            Message::Flight {
                index: 5,
                body: "{\"v\":1,\"e\":\"meta\",\"format\":\"asim2-events v1\"}\n".into(),
            },
            Message::StatusRequest,
            Message::Status {
                body: "{\n  \"format\": \"asim2-fleet-status v1\"\n}\n".into(),
            },
            Message::Ack,
            Message::Bye,
            Message::Error {
                reason: Refusal::BadToken,
                detail: "shared token does not match the controller's".into(),
            },
        ];
        for msg in samples {
            let line = encode(&msg);
            assert!(!line.contains('\n'), "frame must be one line: {line}");
            assert_eq!(decode(&line).unwrap(), msg, "{line}");
        }
    }

    #[test]
    fn frames_are_byte_stable() {
        // A role-less hello must stay byte-identical to the pre-role
        // protocol: the optional field is omitted, not null.
        assert_eq!(
            encode(&Message::Hello {
                protocol: PROTOCOL.into(),
                token: "t".into(),
                worker: "w".into(),
                fingerprint: None,
                role: None,
            }),
            "{\"type\":\"hello\",\"protocol\":\"asim2-fleet v1\",\"token\":\"t\",\"worker\":\"w\"}"
        );
        assert_eq!(
            encode(&Message::Hello {
                protocol: PROTOCOL.into(),
                token: "t".into(),
                worker: "watcher".into(),
                fingerprint: None,
                role: Some("status".into()),
            }),
            "{\"type\":\"hello\",\"protocol\":\"asim2-fleet v1\",\"token\":\"t\",\
             \"worker\":\"watcher\",\"role\":\"status\"}"
        );
        assert_eq!(
            encode(&Message::StatusRequest),
            "{\"type\":\"status-request\"}"
        );
        assert_eq!(
            encode(&Message::LeaseRequest),
            "{\"type\":\"lease-request\"}"
        );
        assert_eq!(
            encode(&Message::Lease {
                start: 0,
                end: 8,
                deadline_ms: 60000
            }),
            "{\"type\":\"lease\",\"start\":0,\"end\":8,\"deadline_ms\":60000}"
        );
        assert_eq!(
            encode(&Message::Error {
                reason: Refusal::ProtocolMismatch,
                detail: "speak asim2-fleet v1".into()
            }),
            "{\"type\":\"error\",\"reason\":\"protocol-mismatch\",\"detail\":\"speak asim2-fleet v1\"}"
        );
    }

    #[test]
    fn refusal_labels_round_trip() {
        for refusal in [
            Refusal::ProtocolMismatch,
            Refusal::BadToken,
            Refusal::FingerprintDrift,
            Refusal::DuplicateWorker,
            Refusal::BadFrame,
            Refusal::BadUpload,
        ] {
            assert_eq!(Refusal::parse(refusal.label()), Some(refusal));
        }
        assert_eq!(Refusal::parse("nope"), None);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        for bad in [
            "",
            "{}",
            "not json",
            "{\"type\":\"frobnicate\"}",
            "{\"type\":\"lease\",\"start\":0}",
            "{\"type\":\"error\",\"reason\":\"made-up\",\"detail\":\"x\"}",
        ] {
            assert!(decode(bad).is_err(), "{bad:?} should not decode");
        }
    }
}
