//! # rtl-fleet — the live campaign control plane
//!
//! `rtl-dist` scales a campaign across machines that share nothing, but
//! its shards are static: someone partitions the case range up front,
//! carries directories around, and merges at the end. This crate replaces
//! that with a *live* control plane — one long-running **controller**
//! that owns the campaign directory and streams **leases** (contiguous
//! case ranges with deadlines) to networked **workers** over a versioned
//! TCP protocol — while keeping the property the whole stack is built on:
//! the finished campaign directory is **byte-identical** to what a
//! single-machine `campaign run` would have produced.
//!
//! The determinism argument is the same as everywhere else in the
//! workspace: a case's outcome (its record, its profile sidecar, its
//! shrunk corpus entry) is a pure function of `(config, index)`, so it
//! does not matter *which* worker executes it, *when*, or *how many
//! times* — the controller publishes each artifact atomically, validates
//! it against the campaign fingerprint first, and deduplicates corpus
//! entries by scenario fingerprint exactly like a shard merge.
//!
//! The moving pieces:
//!
//! - [`protocol`] — `asim2-fleet v1`: newline-delimited compact-JSON
//!   frames, a typed [`Message`] set, and a refusal
//!   matrix with byte-stable error frames (wrong protocol version, wrong
//!   token, drifted manifest fingerprint, duplicate worker name).
//! - [`controller`] — [`Controller::serve`](controller::Controller):
//!   lease dispatch, heartbeat tracking, expiry + reassignment on worker
//!   death, validated atomic publication of records / profiles / corpus
//!   entries / metrics deltas into the standard campaign layout.
//! - [`worker`] — [`work`]: wraps the `rtl-campaign` pool
//!   via `RunOptions.case_range` in a local scratch directory, then
//!   uploads every artifact byte-verbatim — case records, profile and
//!   flight-recorder sidecars, corpus entries, and its full local
//!   telemetry log (`events` frames the controller folds into one
//!   campaign-wide metrics stream).
//! - [`status`] — [`StatusClient`]: a read-only `role: "status"`
//!   handshake and the `asim2-fleet-status v1` live status document,
//!   for watching a campaign without joining it.
//!
//! Work-stealing falls out of the lease loop: a fast worker simply asks
//! again sooner, and a dead worker's lease expires back into the pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod error;
pub mod protocol;
pub mod status;
pub mod worker;

pub use controller::{Controller, ControllerOptions, FleetProgress, NoFleetProgress};
pub use error::FleetError;
pub use protocol::{Message, Refusal, MAX_FRAME, PROTOCOL};
pub use status::{StatusClient, STATUS_FORMAT};
pub use worker::{work, WorkerOptions, WorkerReport};
