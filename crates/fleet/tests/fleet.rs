//! End-to-end fleet campaigns: a controller plus networked workers must
//! produce a campaign directory byte-identical to a single-machine
//! `campaign run` — through work-stealing, worker death, reassignment,
//! and controller stop+restart.

use rtl_campaign::{CampaignConfig, CampaignDir, NoProgress, RunOptions};
use rtl_fleet::{work, Controller, ControllerOptions, FleetError, NoFleetProgress, WorkerOptions};
use rtl_obs::{Recorder, Summary};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asim2-fleet-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_config(engines: &[&str], cases: u32) -> CampaignConfig {
    let mut config = CampaignConfig {
        seed: 1,
        cases,
        engines: engines.iter().map(|e| e.to_string()).collect(),
        ..CampaignConfig::default()
    };
    config.generator.size = 10;
    config.generator.cycles = 24;
    config.generator.io_every = 2;
    config
}

/// Serves a campaign on an OS-assigned localhost port in a thread.
fn serve(
    root: &Path,
    config: &CampaignConfig,
    options: ControllerOptions,
) -> (
    SocketAddr,
    std::thread::JoinHandle<Result<rtl_campaign::CampaignReport, FleetError>>,
) {
    let controller = Controller::bind("127.0.0.1:0").unwrap();
    let addr = controller.local_addr().unwrap();
    let dir = CampaignDir::new(root);
    let config = config.clone();
    let handle =
        std::thread::spawn(move || controller.serve(&dir, &config, &options, &mut NoFleetProgress));
    (addr, handle)
}

fn worker_options(token: &str, name: &str, scratch_dir: &Path) -> WorkerOptions {
    WorkerOptions {
        token: token.into(),
        name: name.into(),
        threads: 2,
        scratch: scratch_dir.to_path_buf(),
        ..WorkerOptions::default()
    }
}

/// Every file under `dir` (recursively), relative path → bytes.
fn tree(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(listing) = std::fs::read_dir(&d) else {
            continue;
        };
        for dirent in listing {
            let path = dirent.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path.strip_prefix(dir).unwrap().display().to_string();
                files.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    files
}

/// Asserts the fleet directory is byte-identical to the single-machine
/// one: manifest, every case record (and sidecar), every corpus file.
/// `bin-cache/` is excluded on both sides — it is a cache, not state.
fn assert_identical(single: &Path, fleet: &Path) {
    let filter = |t: BTreeMap<String, Vec<u8>>| -> BTreeMap<String, Vec<u8>> {
        t.into_iter()
            .filter(|(rel, _)| !rel.starts_with("bin-cache"))
            .collect()
    };
    let single_tree = filter(tree(single));
    let fleet_tree = filter(tree(fleet));
    let names = |t: &BTreeMap<String, Vec<u8>>| t.keys().cloned().collect::<Vec<_>>();
    assert_eq!(
        names(&single_tree),
        names(&fleet_tree),
        "file sets differ between {} and {}",
        single.display(),
        fleet.display()
    );
    for (rel, bytes) in &single_tree {
        assert_eq!(
            bytes, &fleet_tree[rel],
            "{rel} differs between single-machine and fleet"
        );
    }
}

/// A controller with two workers over a diverging engine pair produces
/// records, profile-free reports, and a merged shrunk corpus
/// byte-identical to a single-machine run of the same configuration.
#[test]
fn fleet_campaign_is_bit_identical_to_single_machine() {
    let mut config = small_config(&["interp", "vm-fault"], 6);
    // The vm-fault lane corrupts from cycle 40 — run past it.
    config.generator.cycles = 48;

    let single_root = scratch("ident-single");
    let single = rtl_campaign::run(
        &CampaignDir::new(&single_root),
        &config,
        &RunOptions {
            workers: 2,
            ..RunOptions::default()
        },
        &mut NoProgress,
    )
    .unwrap();
    assert!(single.diverged() > 0, "fault lane must diverge: {single}");
    assert!(!single.new_corpus.is_empty(), "divergences must shrink");

    let fleet_root = scratch("ident-fleet");
    let (addr, controller) = serve(
        &fleet_root,
        &config,
        ControllerOptions {
            token: "t".into(),
            lease: 2,
            ..ControllerOptions::default()
        },
    );
    let workers: Vec<_> = (1..=2)
        .map(|i| {
            let options = worker_options("t", &format!("w{i}"), &scratch(&format!("ident-w{i}")));
            let addr = addr.to_string();
            std::thread::spawn(move || work(&addr, &options))
        })
        .collect();
    for w in workers {
        w.join().unwrap().unwrap();
    }
    let fleet = controller.join().unwrap().unwrap();

    assert!(fleet.clean() == single.clean());
    assert_eq!(format!("{single}"), format!("{fleet}"), "reports differ");
    assert_identical(&single_root, &fleet_root);
}

/// A worker killed mid-lease (deliberately dropping its connection after
/// three record uploads) has its lease reassigned, and a replacement
/// worker finishes the campaign — still bit-identical.
#[test]
fn worker_death_mid_lease_is_reassigned_and_stays_bit_identical() {
    let config = small_config(&["interp", "vm"], 10);

    let single_root = scratch("kill-single");
    let single = rtl_campaign::run(
        &CampaignDir::new(&single_root),
        &config,
        &RunOptions::default(),
        &mut NoProgress,
    )
    .unwrap();

    let fleet_root = scratch("kill-fleet");
    let (addr, controller) = serve(
        &fleet_root,
        &config,
        ControllerOptions {
            token: "t".into(),
            lease: 4,
            ..ControllerOptions::default()
        },
    );

    // The doomed worker abandons its connection mid-lease.
    let mut doomed = worker_options("t", "doomed", &scratch("kill-w1"));
    doomed.abandon_after = Some(3);
    let err = work(&addr.to_string(), &doomed).unwrap_err();
    assert!(matches!(err, FleetError::Abandoned), "{err}");

    // A replacement (fresh name, fresh scratch) finishes everything,
    // including the abandoned lease's remaining cases.
    let replacement = worker_options("t", "replacement", &scratch("kill-w2"));
    let report = work(&addr.to_string(), &replacement).unwrap();
    assert!(report.cases >= 7, "replacement ran the reassigned work");

    let fleet = controller.join().unwrap().unwrap();
    assert!(fleet.complete(), "{fleet}");
    assert_eq!(format!("{single}"), format!("{fleet}"));
    assert_identical(&single_root, &fleet_root);
}

fn fold(summaries: &[String]) -> String {
    let mut summary = Summary::new();
    for (i, text) in summaries.iter().enumerate() {
        summary.fold_text(text, &format!("log{i}")).unwrap();
    }
    summary.deterministic_section()
}

/// Runs a full fleet campaign with `workers` workers and returns the
/// controller's deterministic metrics section plus the report text.
fn run_fleet_with_metrics(tag: &str, config: &CampaignConfig, workers: u32) -> (String, String) {
    let (recorder, log) = Recorder::memory();
    let root = scratch(&format!("metrics-{tag}"));
    let (addr, controller) = serve(
        &root,
        config,
        ControllerOptions {
            token: "t".into(),
            lease: 4,
            recorder,
            ..ControllerOptions::default()
        },
    );
    let handles: Vec<_> = (0..workers)
        .map(|i| {
            let options = worker_options(
                "t",
                &format!("{tag}-w{i}"),
                &scratch(&format!("metrics-{tag}-w{i}")),
            );
            let addr = addr.to_string();
            std::thread::spawn(move || work(&addr, &options))
        })
        .collect();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    let report = controller.join().unwrap().unwrap();
    (fold(&[log.text()]), format!("{report}"))
}

/// Fleet counters (`fleet/leases_granted`, `fleet/cases_dispatched`,
/// `fleet/records_accepted`) and the forwarded campaign counters are
/// byte-identical across worker counts, and across a graceful `--limit`
/// stop + restart (the two phases' logs fold to the full run's totals).
#[test]
fn fleet_counters_are_deterministic_across_worker_counts_and_restart() {
    let config = small_config(&["interp", "vm"], 12);

    let (one_worker, report_one) = run_fleet_with_metrics("one", &config, 1);
    let (two_workers, report_two) = run_fleet_with_metrics("two", &config, 2);
    assert_eq!(one_worker, two_workers, "worker count leaked into counters");
    assert_eq!(report_one, report_two);
    assert!(
        one_worker.contains("fleet/leases_granted 3"),
        "12 cases / lease 4 = 3 grants:\n{one_worker}"
    );
    assert!(
        one_worker.contains("fleet/cases_dispatched 12"),
        "{one_worker}"
    );
    assert!(
        one_worker.contains("fleet/records_accepted 12"),
        "{one_worker}"
    );

    // Phase 1: stop granting once 6 cases are dispatched (rounds up to
    // lease granularity: 8), drain, exit incomplete.
    let root = scratch("metrics-restart");
    let (rec1, log1) = Recorder::memory();
    let (addr, controller) = serve(
        &root,
        &config,
        ControllerOptions {
            token: "t".into(),
            lease: 4,
            limit: Some(6),
            recorder: rec1,
            ..ControllerOptions::default()
        },
    );
    let options = worker_options("t", "restart-w", &scratch("metrics-restart-w"));
    work(&addr.to_string(), &options).unwrap();
    let phase1 = controller.join().unwrap().unwrap();
    assert!(!phase1.complete(), "limit leaves a gap: {phase1}");
    assert_eq!(phase1.completed(), 8, "limit 6 rounds up to two leases");

    // Phase 2: a fresh controller process over the same directory picks
    // up exactly the missing cases.
    let (rec2, log2) = Recorder::memory();
    let (addr, controller) = serve(
        &root,
        &config,
        ControllerOptions {
            token: "t".into(),
            lease: 4,
            recorder: rec2,
            ..ControllerOptions::default()
        },
    );
    let options = worker_options("t", "restart-w", &scratch("metrics-restart-w2"));
    work(&addr.to_string(), &options).unwrap();
    let phase2 = controller.join().unwrap().unwrap();
    assert!(phase2.complete(), "{phase2}");
    assert_eq!(format!("{phase2}"), report_one);

    let restarted = fold(&[log1.text(), log2.text()]);
    assert_eq!(restarted, one_worker, "restart leaked into counters");
}

/// The streamed deterministic counter section — workers forwarding
/// their telemetry to the controller — is byte-identical to a
/// single-machine `campaign run` with a recorder attached, once the
/// controller's own `fleet/*` counters (which have no single-machine
/// analogue) are set aside.
#[test]
fn streamed_fleet_counters_match_single_machine() {
    let mut config = small_config(&["interp", "vm-fault"], 6);
    config.generator.cycles = 48; // run past the fault lane's corruption

    let (fleet_section, _) = run_fleet_with_metrics("vs-single", &config, 2);
    let stripped: String = fleet_section
        .lines()
        .filter(|line| !line.starts_with("  fleet/"))
        .map(|line| format!("{line}\n"))
        .collect();
    assert_ne!(
        stripped, fleet_section,
        "the fleet log must carry fleet/* counters"
    );

    let (recorder, log) = Recorder::memory();
    let single_root = scratch("vs-single-machine");
    let single = rtl_campaign::run(
        &CampaignDir::new(&single_root),
        &config,
        &RunOptions {
            recorder,
            ..RunOptions::default()
        },
        &mut NoProgress,
    )
    .unwrap();
    assert!(single.diverged() > 0, "fault lane must diverge: {single}");
    assert_eq!(
        stripped,
        fold(&[log.text()]),
        "streamed counters drifted from the single-machine run"
    );
}

/// The flight-sidecar files under `cases/`, relative path → bytes.
fn flight_files(root: &Path) -> BTreeMap<String, Vec<u8>> {
    tree(root)
        .into_iter()
        .filter(|(rel, _)| rel.ends_with(".flight.jsonl"))
        .collect()
}

/// With the flight recorder armed fleet-wide, every diverging case gets
/// a `cases/case-N.flight.jsonl` sidecar whose bytes are identical to
/// the single-machine run's — across worker counts {1, 2} and across a
/// worker killed mid-lease and replaced.
#[test]
fn flight_sidecars_are_deterministic_across_worker_counts_and_kill() {
    let mut config = small_config(&["interp", "vm-fault"], 6);
    config.generator.cycles = 48;

    let single_root = scratch("flight-single");
    let single = rtl_campaign::run(
        &CampaignDir::new(&single_root),
        &config,
        &RunOptions {
            workers: 2,
            flight: true,
            ..RunOptions::default()
        },
        &mut NoProgress,
    )
    .unwrap();
    assert!(single.diverged() > 0, "fault lane must diverge: {single}");
    let reference = flight_files(&single_root);
    assert!(
        !reference.is_empty(),
        "diverging cases must dump flight sidecars"
    );

    let fleet_options = || ControllerOptions {
        token: "t".into(),
        lease: 2,
        flight: true,
        ..ControllerOptions::default()
    };

    for workers in [1u32, 2] {
        let fleet_root = scratch(&format!("flight-w{workers}"));
        let (addr, controller) = serve(&fleet_root, &config, fleet_options());
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let options = worker_options(
                    "t",
                    &format!("fw{i}"),
                    &scratch(&format!("flight-w{workers}-s{i}")),
                );
                let addr = addr.to_string();
                std::thread::spawn(move || work(&addr, &options))
            })
            .collect();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        controller.join().unwrap().unwrap();
        assert_eq!(
            reference,
            flight_files(&fleet_root),
            "{workers}-worker fleet flight sidecars drifted"
        );
        // The sidecars ride inside the campaign directory, so the whole
        // tree — records, corpus, manifest, flight logs — still matches.
        assert_identical(&single_root, &fleet_root);
    }

    // Kill + replace: the doomed worker abandons its connection after
    // three uploads; the replacement re-runs the abandoned lease. The
    // sidecars it republishes must be the same bytes.
    let fleet_root = scratch("flight-kill");
    let (addr, controller) = serve(&fleet_root, &config, fleet_options());
    let mut doomed = worker_options("t", "doomed", &scratch("flight-kill-w1"));
    doomed.abandon_after = Some(3);
    let err = work(&addr.to_string(), &doomed).unwrap_err();
    assert!(matches!(err, FleetError::Abandoned), "{err}");
    let replacement = worker_options("t", "replacement", &scratch("flight-kill-w2"));
    work(&addr.to_string(), &replacement).unwrap();
    controller.join().unwrap().unwrap();
    assert_eq!(
        reference,
        flight_files(&fleet_root),
        "kill+replace changed a flight sidecar"
    );
    assert_identical(&single_root, &fleet_root);
}

/// A half-dead worker — connected but silent — has its lease expired at
/// the deadline and the cases are reassigned to a live worker.
#[test]
fn silent_workers_lose_their_lease_at_the_deadline() {
    use rtl_fleet::protocol::{Framed, Message, PROTOCOL};

    let config = small_config(&["interp", "vm"], 4);
    let root = scratch("expiry");
    let (addr, controller) = serve(
        &root,
        &config,
        ControllerOptions {
            token: "t".into(),
            lease: 2,
            deadline: Duration::from_millis(150),
            grace: Duration::from_millis(200),
            ..ControllerOptions::default()
        },
    );

    // A raw protocol client takes a lease and goes silent.
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut silent = Framed::new(stream).unwrap();
    let welcome = silent
        .call(&Message::Hello {
            protocol: PROTOCOL.into(),
            token: "t".into(),
            worker: "silent".into(),
            fingerprint: None,
            role: None,
        })
        .unwrap();
    assert!(matches!(welcome, Message::Welcome { .. }), "{welcome:?}");
    let lease = silent.call(&Message::LeaseRequest).unwrap();
    assert!(
        matches!(
            lease,
            Message::Lease {
                start: 0,
                end: 2,
                ..
            }
        ),
        "{lease:?}"
    );

    // Past the deadline, a live worker picks up the whole campaign —
    // including the silent client's expired lease.
    std::thread::sleep(Duration::from_millis(300));
    let options = worker_options("t", "live", &scratch("expiry-w"));
    let report = work(&addr.to_string(), &options).unwrap();
    assert_eq!(report.cases, 4, "{report:?}");
    let fleet = controller.join().unwrap().unwrap();
    assert!(fleet.complete(), "{fleet}");
    drop(silent);
}
