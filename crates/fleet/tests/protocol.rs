//! Protocol golden tests: the versioned handshake refusal matrix with
//! byte-stable error frames, and frame round-trip properties.

use proptest::prelude::*;
use rtl_campaign::{CampaignConfig, CampaignDir, NoProgress, RunOptions};
use rtl_fleet::protocol::{self, CorpusFiles, CounterDelta, Message};
use rtl_fleet::{Controller, ControllerOptions, NoFleetProgress, WorkerOptions, PROTOCOL};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asim2-fleet-proto-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sends one raw frame line and returns the response line verbatim.
fn exchange(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

fn hello(protocol: &str, token: &str, worker: &str, fingerprint: Option<&str>) -> String {
    hello_role(protocol, token, worker, fingerprint, None)
}

fn hello_role(
    protocol: &str,
    token: &str,
    worker: &str,
    fingerprint: Option<&str>,
    role: Option<&str>,
) -> String {
    protocol::encode(&Message::Hello {
        protocol: protocol.into(),
        token: token.into(),
        worker: worker.into(),
        fingerprint: fingerprint.map(str::to_string),
        role: role.map(str::to_string),
    })
}

/// Every handshake refusal, answered with a byte-stable error frame and
/// a named reason; refused peers never reach the campaign.
#[test]
fn handshake_refusal_matrix_is_byte_stable() {
    let mut config = CampaignConfig {
        seed: 1,
        cases: 2,
        ..CampaignConfig::default()
    };
    config.generator.size = 8;
    config.generator.cycles = 16;
    let fp = config.fingerprint();

    let controller = Controller::bind("127.0.0.1:0").unwrap();
    let addr = controller.local_addr().unwrap();
    let root = scratch("matrix");
    let dir = CampaignDir::new(&root);
    let serve_config = config.clone();
    let serving = std::thread::spawn(move || {
        controller.serve(
            &dir,
            &serve_config,
            &ControllerOptions {
                token: "secret".into(),
                ..ControllerOptions::default()
            },
            &mut NoFleetProgress,
        )
    });

    // Wrong protocol version.
    assert_eq!(
        exchange(addr, &hello("asim2-fleet v0", "secret", "w", None)),
        "{\"type\":\"error\",\"reason\":\"protocol-mismatch\",\
         \"detail\":\"this controller speaks asim2-fleet v1\"}"
    );
    // Wrong token.
    assert_eq!(
        exchange(addr, &hello(PROTOCOL, "wrong", "w", None)),
        "{\"type\":\"error\",\"reason\":\"bad-token\",\
         \"detail\":\"shared token does not match the controller's\"}"
    );
    // Drifted campaign fingerprint.
    assert_eq!(
        exchange(
            addr,
            &hello(PROTOCOL, "secret", "w", Some("0000000000000000"))
        ),
        format!(
            "{{\"type\":\"error\",\"reason\":\"fingerprint-drift\",\
             \"detail\":\"controller campaign fingerprint is {fp:016x}\"}}"
        )
    );
    // Duplicate worker name: register "w", then hello again as "w".
    let registered = TcpStream::connect(addr).unwrap();
    {
        let mut w = registered.try_clone().unwrap();
        writeln!(w, "{}", hello(PROTOCOL, "secret", "w", None)).unwrap();
        let mut welcome = String::new();
        BufReader::new(&registered).read_line(&mut welcome).unwrap();
        assert!(welcome.contains("\"type\":\"welcome\""), "{welcome}");
    }
    assert_eq!(
        exchange(addr, &hello(PROTOCOL, "secret", "w", None)),
        "{\"type\":\"error\",\"reason\":\"duplicate-worker\",\
         \"detail\":\"a worker named \\\"w\\\" is already connected\"}"
    );
    drop(registered);
    // A first frame that is not hello.
    assert_eq!(
        exchange(addr, &protocol::encode(&Message::LeaseRequest)),
        "{\"type\":\"error\",\"reason\":\"bad-frame\",\
         \"detail\":\"the first frame must be hello\"}"
    );
    // A frame that does not decode at all.
    let garbage = exchange(addr, "this is not a frame");
    assert!(
        garbage.starts_with(
            "{\"type\":\"error\",\"reason\":\"bad-frame\",\"detail\":\"undecodable frame:"
        ),
        "{garbage}"
    );

    // The campaign itself is untouched by the refused peers: a real
    // worker drains it normally.
    rtl_fleet::work(
        &addr.to_string(),
        &WorkerOptions {
            token: "secret".into(),
            name: "finisher".into(),
            threads: 1,
            scratch: scratch("matrix-worker"),
            ..WorkerOptions::default()
        },
    )
    .unwrap();
    let report = serving.join().unwrap().unwrap();
    assert!(report.complete(), "{report}");

    // The fleet directory equals a plain single-machine run even after
    // all that hostile traffic.
    let single_root = scratch("matrix-single");
    let single = rtl_campaign::run(
        &CampaignDir::new(&single_root),
        &config,
        &RunOptions::default(),
        &mut NoProgress,
    )
    .unwrap();
    assert_eq!(format!("{single}"), format!("{report}"));
}

/// A worker refused mid-handshake surfaces the named reason through
/// [`rtl_fleet::work`] as `FleetError::Refused`.
#[test]
fn refusals_surface_through_the_worker_api() {
    let config = CampaignConfig {
        cases: 1,
        ..CampaignConfig::default()
    };
    let controller = Controller::bind("127.0.0.1:0").unwrap();
    let addr = controller.local_addr().unwrap();
    let root = scratch("refused");
    let dir = CampaignDir::new(&root);
    let serve_config = config.clone();
    let serving = std::thread::spawn(move || {
        controller.serve(
            &dir,
            &serve_config,
            &ControllerOptions {
                token: "secret".into(),
                ..ControllerOptions::default()
            },
            &mut NoFleetProgress,
        )
    });

    let err = rtl_fleet::work(
        &addr.to_string(),
        &WorkerOptions {
            token: "wrong".into(),
            name: "w".into(),
            scratch: scratch("refused-w"),
            ..WorkerOptions::default()
        },
    )
    .unwrap_err();
    match &err {
        rtl_fleet::FleetError::Refused { reason, detail } => {
            assert_eq!(reason.label(), "bad-token");
            assert_eq!(detail, "shared token does not match the controller's");
        }
        other => panic!("{other}"),
    }
    assert_eq!(
        err.to_string(),
        "refused: bad-token: shared token does not match the controller's"
    );

    // Drain so the serving thread exits.
    let mut options = WorkerOptions {
        token: "secret".into(),
        name: "w".into(),
        scratch: scratch("refused-w2"),
        ..WorkerOptions::default()
    };
    options.threads = 1;
    rtl_fleet::work(&addr.to_string(), &options).unwrap();
    serving.join().unwrap().unwrap();
}

/// The read-only status role goes through the same refusal matrix as a
/// worker (byte-stable error frames), skips the duplicate-name check,
/// answers `status-request` with a versioned JSON document, and refuses
/// every work-side frame.
#[test]
fn status_role_is_read_only_and_versioned() {
    use rtl_campaign::json::Json;

    let config = CampaignConfig {
        seed: 1,
        cases: 3,
        ..CampaignConfig::default()
    };
    let fp = config.fingerprint();
    let controller = Controller::bind("127.0.0.1:0").unwrap();
    let addr = controller.local_addr().unwrap();
    let root = scratch("status");
    let dir = CampaignDir::new(&root);
    let serve_config = config.clone();
    let serving = std::thread::spawn(move || {
        controller.serve(
            &dir,
            &serve_config,
            &ControllerOptions {
                token: "secret".into(),
                ..ControllerOptions::default()
            },
            &mut NoFleetProgress,
        )
    });

    // The refusal matrix applies to status peers too, same bytes.
    assert_eq!(
        exchange(
            addr,
            &hello_role("asim2-fleet v0", "secret", "s", None, Some("status"))
        ),
        "{\"type\":\"error\",\"reason\":\"protocol-mismatch\",\
         \"detail\":\"this controller speaks asim2-fleet v1\"}"
    );
    assert_eq!(
        exchange(
            addr,
            &hello_role(PROTOCOL, "wrong", "s", None, Some("status"))
        ),
        "{\"type\":\"error\",\"reason\":\"bad-token\",\
         \"detail\":\"shared token does not match the controller's\"}"
    );
    // A role this controller has never heard of.
    assert_eq!(
        exchange(
            addr,
            &hello_role(PROTOCOL, "secret", "s", None, Some("observer"))
        ),
        "{\"type\":\"error\",\"reason\":\"bad-frame\",\
         \"detail\":\"unknown hello role \\\"observer\\\" (this controller knows \\\"status\\\")\"}"
    );

    // Status peers skip the duplicate-name check: two observers with the
    // same name may watch at once.
    let watchers: Vec<_> = (0..2)
        .map(|_| {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = stream.try_clone().unwrap();
            writeln!(
                w,
                "{}",
                hello_role(PROTOCOL, "secret", "looker", None, Some("status"))
            )
            .unwrap();
            let mut reader = BufReader::new(stream);
            let mut welcome = String::new();
            reader.read_line(&mut welcome).unwrap();
            assert!(welcome.contains("\"type\":\"welcome\""), "{welcome}");
            (w, reader)
        })
        .collect();
    drop(watchers);

    // Happy path through the public client: a versioned document with
    // the campaign's fingerprint and case totals.
    let mut client = rtl_fleet::StatusClient::connect(&addr.to_string(), "secret").unwrap();
    let body = client.fetch().unwrap().expect("controller is alive");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(
        doc.get("format").and_then(Json::as_str),
        Some(rtl_fleet::STATUS_FORMAT)
    );
    assert_eq!(
        doc.get("fingerprint").and_then(Json::as_str),
        Some(format!("{fp:016x}").as_str())
    );
    assert_eq!(doc.get("cases").and_then(Json::as_u64), Some(3));
    assert_eq!(doc.get("done").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("pending").and_then(Json::as_u64), Some(3));
    assert!(doc.get("eta_ms").is_some(), "eta field must be present");
    drop(client);

    // A status connection that asks for work is refused with the exact
    // read-only error frame.
    let stream = TcpStream::connect(addr).unwrap();
    let mut w = stream.try_clone().unwrap();
    writeln!(
        w,
        "{}",
        hello_role(PROTOCOL, "secret", "greedy", None, Some("status"))
    )
    .unwrap();
    let mut reader = BufReader::new(stream);
    let mut welcome = String::new();
    reader.read_line(&mut welcome).unwrap();
    assert!(welcome.contains("\"type\":\"welcome\""), "{welcome}");
    writeln!(w, "{}", protocol::encode(&Message::LeaseRequest)).unwrap();
    let mut refusal = String::new();
    reader.read_line(&mut refusal).unwrap();
    assert_eq!(
        refusal.trim_end(),
        "{\"type\":\"error\",\"reason\":\"bad-frame\",\
         \"detail\":\"a status connection is read-only: \
         only status-request and bye are accepted\"}"
    );

    // None of that perturbed the campaign: a worker drains it cleanly.
    rtl_fleet::work(
        &addr.to_string(),
        &WorkerOptions {
            token: "secret".into(),
            name: "finisher".into(),
            threads: 1,
            scratch: scratch("status-worker"),
            ..WorkerOptions::default()
        },
    )
    .unwrap();
    let report = serving.join().unwrap().unwrap();
    assert!(report.complete(), "{report}");
}

// Payload alphabet for the round-trip property: alphanumerics plus the
// characters the frame escaper must handle — newline, tab, quote,
// backslash — so a failure here means a frame boundary or escape bug.
const PAYLOAD: &str = "[a-zA-Z0-9 \n\t\"\\\\-]{0,16}";

proptest! {
    /// Every message round-trips through the frame encoding, for
    /// arbitrary payload strings (including control characters and
    /// newlines, which must stay escaped inside the one-line frame).
    #[test]
    fn frames_round_trip(
        token in PAYLOAD,
        worker in PAYLOAD,
        body in PAYLOAD,
        name in PAYLOAD,
        index in any::<u32>(),
        n in any::<u64>(),
    ) {
        let samples = vec![
            Message::Hello {
                protocol: PROTOCOL.into(),
                token: token.clone(),
                worker: worker.clone(),
                fingerprint: Some(format!("{n:016x}")),
                role: None,
            },
            Message::Lease { start: index, end: index.saturating_add(8), deadline_ms: n },
            Message::Record { index, body: body.clone() },
            Message::Profile { index, body: body.clone() },
            Message::Corpus {
                name: name.clone(),
                fingerprint: format!("{n:016x}"),
                files: CorpusFiles {
                    asim: body.clone(),
                    stim: token.clone(),
                    ckpt: worker.clone(),
                    meta: name.clone(),
                },
            },
            Message::Metrics {
                counters: vec![CounterDelta { src: token.clone(), key: worker.clone(), n }],
            },
            Message::Error {
                reason: rtl_fleet::Refusal::BadUpload,
                detail: body.clone(),
            },
        ];
        for msg in samples {
            let line = protocol::encode(&msg);
            prop_assert!(!line.contains('\n'), "{}", line);
            prop_assert_eq!(protocol::decode(&line).unwrap(), msg);
        }
    }

    /// Decoding never panics on arbitrary near-JSON garbage.
    #[test]
    fn decode_is_total(line in "[a-z0-9{}\":, \\\\]{0,40}") {
        let _ = protocol::decode(&line);
    }
}
