//! Protocol golden tests: the versioned handshake refusal matrix with
//! byte-stable error frames, and frame round-trip properties.

use proptest::prelude::*;
use rtl_campaign::{CampaignConfig, CampaignDir, NoProgress, RunOptions};
use rtl_fleet::protocol::{self, CorpusFiles, CounterDelta, Message};
use rtl_fleet::{Controller, ControllerOptions, NoFleetProgress, WorkerOptions, PROTOCOL};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asim2-fleet-proto-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sends one raw frame line and returns the response line verbatim.
fn exchange(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

fn hello(protocol: &str, token: &str, worker: &str, fingerprint: Option<&str>) -> String {
    protocol::encode(&Message::Hello {
        protocol: protocol.into(),
        token: token.into(),
        worker: worker.into(),
        fingerprint: fingerprint.map(str::to_string),
    })
}

/// Every handshake refusal, answered with a byte-stable error frame and
/// a named reason; refused peers never reach the campaign.
#[test]
fn handshake_refusal_matrix_is_byte_stable() {
    let mut config = CampaignConfig {
        seed: 1,
        cases: 2,
        ..CampaignConfig::default()
    };
    config.generator.size = 8;
    config.generator.cycles = 16;
    let fp = config.fingerprint();

    let controller = Controller::bind("127.0.0.1:0").unwrap();
    let addr = controller.local_addr().unwrap();
    let root = scratch("matrix");
    let dir = CampaignDir::new(&root);
    let serve_config = config.clone();
    let serving = std::thread::spawn(move || {
        controller.serve(
            &dir,
            &serve_config,
            &ControllerOptions {
                token: "secret".into(),
                ..ControllerOptions::default()
            },
            &mut NoFleetProgress,
        )
    });

    // Wrong protocol version.
    assert_eq!(
        exchange(addr, &hello("asim2-fleet v0", "secret", "w", None)),
        "{\"type\":\"error\",\"reason\":\"protocol-mismatch\",\
         \"detail\":\"this controller speaks asim2-fleet v1\"}"
    );
    // Wrong token.
    assert_eq!(
        exchange(addr, &hello(PROTOCOL, "wrong", "w", None)),
        "{\"type\":\"error\",\"reason\":\"bad-token\",\
         \"detail\":\"shared token does not match the controller's\"}"
    );
    // Drifted campaign fingerprint.
    assert_eq!(
        exchange(
            addr,
            &hello(PROTOCOL, "secret", "w", Some("0000000000000000"))
        ),
        format!(
            "{{\"type\":\"error\",\"reason\":\"fingerprint-drift\",\
             \"detail\":\"controller campaign fingerprint is {fp:016x}\"}}"
        )
    );
    // Duplicate worker name: register "w", then hello again as "w".
    let registered = TcpStream::connect(addr).unwrap();
    {
        let mut w = registered.try_clone().unwrap();
        writeln!(w, "{}", hello(PROTOCOL, "secret", "w", None)).unwrap();
        let mut welcome = String::new();
        BufReader::new(&registered).read_line(&mut welcome).unwrap();
        assert!(welcome.contains("\"type\":\"welcome\""), "{welcome}");
    }
    assert_eq!(
        exchange(addr, &hello(PROTOCOL, "secret", "w", None)),
        "{\"type\":\"error\",\"reason\":\"duplicate-worker\",\
         \"detail\":\"a worker named \\\"w\\\" is already connected\"}"
    );
    drop(registered);
    // A first frame that is not hello.
    assert_eq!(
        exchange(addr, &protocol::encode(&Message::LeaseRequest)),
        "{\"type\":\"error\",\"reason\":\"bad-frame\",\
         \"detail\":\"the first frame must be hello\"}"
    );
    // A frame that does not decode at all.
    let garbage = exchange(addr, "this is not a frame");
    assert!(
        garbage.starts_with(
            "{\"type\":\"error\",\"reason\":\"bad-frame\",\"detail\":\"undecodable frame:"
        ),
        "{garbage}"
    );

    // The campaign itself is untouched by the refused peers: a real
    // worker drains it normally.
    rtl_fleet::work(
        &addr.to_string(),
        &WorkerOptions {
            token: "secret".into(),
            name: "finisher".into(),
            threads: 1,
            scratch: scratch("matrix-worker"),
            ..WorkerOptions::default()
        },
    )
    .unwrap();
    let report = serving.join().unwrap().unwrap();
    assert!(report.complete(), "{report}");

    // The fleet directory equals a plain single-machine run even after
    // all that hostile traffic.
    let single_root = scratch("matrix-single");
    let single = rtl_campaign::run(
        &CampaignDir::new(&single_root),
        &config,
        &RunOptions::default(),
        &mut NoProgress,
    )
    .unwrap();
    assert_eq!(format!("{single}"), format!("{report}"));
}

/// A worker refused mid-handshake surfaces the named reason through
/// [`rtl_fleet::work`] as `FleetError::Refused`.
#[test]
fn refusals_surface_through_the_worker_api() {
    let config = CampaignConfig {
        cases: 1,
        ..CampaignConfig::default()
    };
    let controller = Controller::bind("127.0.0.1:0").unwrap();
    let addr = controller.local_addr().unwrap();
    let root = scratch("refused");
    let dir = CampaignDir::new(&root);
    let serve_config = config.clone();
    let serving = std::thread::spawn(move || {
        controller.serve(
            &dir,
            &serve_config,
            &ControllerOptions {
                token: "secret".into(),
                ..ControllerOptions::default()
            },
            &mut NoFleetProgress,
        )
    });

    let err = rtl_fleet::work(
        &addr.to_string(),
        &WorkerOptions {
            token: "wrong".into(),
            name: "w".into(),
            scratch: scratch("refused-w"),
            ..WorkerOptions::default()
        },
    )
    .unwrap_err();
    match &err {
        rtl_fleet::FleetError::Refused { reason, detail } => {
            assert_eq!(reason.label(), "bad-token");
            assert_eq!(detail, "shared token does not match the controller's");
        }
        other => panic!("{other}"),
    }
    assert_eq!(
        err.to_string(),
        "refused: bad-token: shared token does not match the controller's"
    );

    // Drain so the serving thread exits.
    let mut options = WorkerOptions {
        token: "secret".into(),
        name: "w".into(),
        scratch: scratch("refused-w2"),
        ..WorkerOptions::default()
    };
    options.threads = 1;
    rtl_fleet::work(&addr.to_string(), &options).unwrap();
    serving.join().unwrap().unwrap();
}

// Payload alphabet for the round-trip property: alphanumerics plus the
// characters the frame escaper must handle — newline, tab, quote,
// backslash — so a failure here means a frame boundary or escape bug.
const PAYLOAD: &str = "[a-zA-Z0-9 \n\t\"\\\\-]{0,16}";

proptest! {
    /// Every message round-trips through the frame encoding, for
    /// arbitrary payload strings (including control characters and
    /// newlines, which must stay escaped inside the one-line frame).
    #[test]
    fn frames_round_trip(
        token in PAYLOAD,
        worker in PAYLOAD,
        body in PAYLOAD,
        name in PAYLOAD,
        index in any::<u32>(),
        n in any::<u64>(),
    ) {
        let samples = vec![
            Message::Hello {
                protocol: PROTOCOL.into(),
                token: token.clone(),
                worker: worker.clone(),
                fingerprint: Some(format!("{n:016x}")),
            },
            Message::Lease { start: index, end: index.saturating_add(8), deadline_ms: n },
            Message::Record { index, body: body.clone() },
            Message::Profile { index, body: body.clone() },
            Message::Corpus {
                name: name.clone(),
                fingerprint: format!("{n:016x}"),
                files: CorpusFiles {
                    asim: body.clone(),
                    stim: token.clone(),
                    ckpt: worker.clone(),
                    meta: name.clone(),
                },
            },
            Message::Metrics {
                counters: vec![CounterDelta { src: token.clone(), key: worker.clone(), n }],
            },
            Message::Error {
                reason: rtl_fleet::Refusal::BadUpload,
                detail: body.clone(),
            },
        ];
        for msg in samples {
            let line = protocol::encode(&msg);
            prop_assert!(!line.contains('\n'), "{}", line);
            prop_assert_eq!(protocol::decode(&line).unwrap(), msg);
        }
    }

    /// Decoding never panics on arbitrary near-JSON garbage.
    #[test]
    fn decode_is_total(line in "[a-z0-9{}\":, \\\\]{0,40}") {
        let _ = protocol::decode(&line);
    }
}
