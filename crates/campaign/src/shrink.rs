//! Shrinking divergent fuzz cases to minimal regression scenarios.
//!
//! A raw fuzz divergence is a haystack: a few hundred components driven
//! for a long horizon. Borrowing the binary-search discipline of
//! property-based shrinking (à la proptest), this module minimizes the
//! three knobs that matter, re-running the full lockstep comparison per
//! candidate and keeping only confirmed-diverging shrinks:
//!
//! 1. **generator size** — the smallest component count whose scenario
//!    still diverges (each probe regenerates the scenario from the same
//!    seed, so candidates stay valid by construction);
//! 2. **cycle horizon** — the shortest run that still reaches the
//!    divergence (bounded above by the observed divergence cycle);
//! 3. **stimulus length** — the shortest input-script prefix that still
//!    diverges.
//!
//! Divergence is not monotone in the size knob (a smaller design is a
//! different design), so as in all practical shrinkers the result is a
//! *locally* minimal diverging scenario, found greedily: the search only
//! ever moves to candidates that were re-run and confirmed to diverge.

use crate::error::CampaignError;
use rtl_core::EngineRegistry;
use rtl_cosim::{
    generate_scenario, CosimOptions, CosimOutcome, DivergenceReport, GenOptions, ScenarioError,
};
use rtl_machines::Scenario;

/// A minimized divergence: the scenario to save, the divergence it still
/// produces, and how it was reached.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The originating fuzz seed.
    pub seed: u64,
    /// The minimal scenario (named `corpus/seed-N`).
    pub scenario: Scenario,
    /// The divergence the minimal scenario produces.
    pub report: DivergenceReport,
    /// Final generator size (component count knob).
    pub size: usize,
    /// Final cycle horizon.
    pub cycles: u64,
    /// Final stimulus length.
    pub input_len: usize,
    /// Lockstep re-runs the search spent.
    pub attempts: u32,
}

/// Shrinks the fuzz case identified by `seed` under the given generator
/// options. Returns `Ok(None)` when the case does not diverge in the
/// first place.
///
/// Deterministic: the result depends only on the arguments, so parallel
/// workers shrinking different cases stay order-independent.
///
/// # Errors
///
/// Lane construction/run failures; a scenario that fails to elaborate
/// (impossible for generated cases unless the generator invariant broke).
pub fn shrink_divergence(
    registry: &EngineRegistry,
    engines: &[String],
    seed: u64,
    generator: &GenOptions,
    cosim: &CosimOptions,
) -> Result<Option<Shrunk>, CampaignError> {
    let mut attempts = 0u32;
    let mut probe = |scenario: &Scenario| -> Result<Option<DivergenceReport>, CampaignError> {
        attempts += 1;
        match run(registry, engines, scenario, cosim) {
            // A candidate is only a valid shrink if its divergence stands
            // on its own: a comparison that also tripped a runtime halt
            // (e.g. an over-truncated stimulus exhausting input on the
            // divergence cycle) would archive a scenario that *halts* for
            // correct engines instead of agreeing — useless as a
            // regression gate. Error-kind divergences are the exception:
            // there the mismatched errors are the bug itself.
            Ok(CosimOutcome::Divergence(report)) => {
                let usable = matches!(report.kind, rtl_cosim::DivergenceKind::Error)
                    || report.lanes.iter().all(|l| l.error.is_none());
                Ok(usable.then_some(*report))
            }
            Ok(CosimOutcome::Agreement { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    };
    let generate = |size: usize, cycles: u64| {
        generate_scenario(
            seed,
            &GenOptions {
                size,
                cycles,
                io_every: generator.io_every,
            },
        )
    };

    let original = generate(generator.size, generator.cycles);
    let Some(mut best_report) = probe(&original)? else {
        return Ok(None);
    };

    // 1. Size: first-diverging binary search over [1, size]. The upper
    //    bound is always a confirmed-diverging size, so the result is too.
    let mut lo = 1usize;
    let mut best_size = generator.size.max(1);
    while lo < best_size {
        let mid = lo + (best_size - lo) / 2;
        match probe(&generate(mid, generator.cycles))? {
            Some(report) => {
                best_size = mid;
                best_report = report;
            }
            None => lo = mid + 1,
        }
    }

    // 2. Horizon: the divergence happened at cycle c, so any horizon
    //    > c reaches it (a shorter horizon only truncates the run). Search
    //    the first-diverging horizon in [1, c + 1].
    let observed = u64::try_from(best_report.cycle).unwrap_or(generator.cycles);
    let mut best_cycles = (observed + 1).min(generator.cycles.max(1));
    match probe(&generate(best_size, best_cycles))? {
        Some(report) => best_report = report,
        // The horizon interacts with the stimulus length; fall back to
        // the full horizon if the tightened bound loses the divergence.
        None => best_cycles = generator.cycles.max(1),
    }
    let mut lo = 1u64;
    while lo < best_cycles {
        let mid = lo + (best_cycles - lo) / 2;
        match probe(&generate(best_size, mid))? {
            Some(report) => {
                best_cycles = mid;
                best_report = report;
            }
            None => lo = mid + 1,
        }
    }

    // 3. Stimulus: the shortest prefix of the input script that still
    //    diverges (an over-truncated script halts the lanes unanimously
    //    with input-exhausted instead of diverging, ending the search).
    let mut minimal = generate(best_size, best_cycles);
    if !minimal.input.is_empty() {
        let full = minimal.input.clone();
        let mut best_len = full.len();
        let mut lo = 0usize;
        let truncated = |len: usize| Scenario {
            input: full[..len].to_vec(),
            ..minimal.clone()
        };
        while lo < best_len {
            let mid = lo + (best_len - lo) / 2;
            match probe(&truncated(mid))? {
                Some(report) => {
                    best_len = mid;
                    best_report = report;
                }
                None => lo = mid + 1,
            }
        }
        minimal.input.truncate(best_len);
    }

    let input_len = minimal.input.len();
    minimal.name = format!("corpus/seed-{seed}");
    best_report.scenario = minimal.name.clone();
    Ok(Some(Shrunk {
        seed,
        scenario: minimal,
        report: best_report,
        size: best_size,
        cycles: best_cycles,
        input_len,
        attempts,
    }))
}

fn run(
    registry: &EngineRegistry,
    engines: &[String],
    scenario: &Scenario,
    cosim: &CosimOptions,
) -> Result<CosimOutcome, ScenarioError> {
    rtl_cosim::run_scenario_names(registry, engines, scenario, cosim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyVmFactory;

    fn registry_with_fault(from_cycle: u64) -> EngineRegistry {
        let mut r = rtl_cosim::default_registry();
        r.register(Box::new(FaultyVmFactory::from_cycle(from_cycle)));
        r
    }

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn agreeing_cases_do_not_shrink() {
        let registry = rtl_cosim::default_registry();
        let result = shrink_divergence(
            &registry,
            &names(&["interp", "vm"]),
            1,
            &GenOptions {
                size: 10,
                cycles: 24,
                ..GenOptions::default()
            },
            &CosimOptions::default(),
        )
        .unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn injected_fault_shrinks_to_its_trigger_cycle() {
        // The faulty VM corrupts trace bytes from cycle 40 on; the minimal
        // reproduction is one component and a 41-cycle horizon.
        let registry = registry_with_fault(40);
        let generator = GenOptions {
            size: 30,
            cycles: 64,
            ..GenOptions::default()
        };
        let shrunk = shrink_divergence(
            &registry,
            &names(&["interp", "vm-fault"]),
            5,
            &generator,
            &CosimOptions::default(),
        )
        .unwrap()
        .expect("fault diverges");
        assert_eq!(shrunk.size, 1, "size shrinks to one component");
        assert_eq!(shrunk.cycles, 41, "horizon shrinks to trigger + 1");
        assert_eq!(shrunk.report.cycle, 40);
        assert_eq!(shrunk.scenario.name, "corpus/seed-5");
        assert!(shrunk.attempts < 40, "binary search, not linear scan");

        // Shrinking is deterministic.
        let again = shrink_divergence(
            &registry,
            &names(&["interp", "vm-fault"]),
            5,
            &generator,
            &CosimOptions::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(again.scenario, shrunk.scenario);
        assert_eq!(again.attempts, shrunk.attempts);
    }

    #[test]
    fn stimulus_shrinks_with_the_horizon() {
        // Force an input port (io_every = 1) and check the stimulus is
        // truncated to what the shrunk horizon consumes.
        let registry = registry_with_fault(8);
        let shrunk = shrink_divergence(
            &registry,
            &names(&["interp", "vm-fault"]),
            0,
            &GenOptions {
                size: 20,
                cycles: 64,
                io_every: 1,
            },
            &CosimOptions::default(),
        )
        .unwrap()
        .expect("fault diverges");
        assert_eq!(shrunk.cycles, 9);
        assert!(
            shrunk.input_len <= 10,
            "stimulus truncated to the horizon's consumption, got {}",
            shrunk.input_len
        );
    }
}
