//! The campaign runner: a work-stealing worker pool over per-case fuzz
//! lockstep, publishing case records as they complete.
//!
//! Determinism is the load-bearing property. Every case's outcome depends
//! only on `(config, index)` — each worker builds its own
//! [`EngineRegistry`] and each case derives its own seed — so the campaign
//! summary is identical across runs, worker counts and interruptions.
//! Workers *steal* case indices from one shared counter (the cheapest
//! work-stealing queue there is: cases are homogeneous, so a single atomic
//! head beats per-worker deques), and the collector publishes each record
//! atomically before acknowledging it, which is what makes a kill at any
//! instant resumable.

use crate::config::CampaignConfig;
use crate::corpus::{self, kind_label, ReplayReport};
use crate::error::CampaignError;
use crate::fault::FaultyVmFactory;
use crate::shrink::shrink_divergence;
use crate::state::{CampaignDir, CaseRecord, CaseStatus};
use rtl_compile::{BinaryCache, GeneratedRustFactory};
use rtl_core::{EngineRegistry, Recorder, StopReason};
use rtl_cosim::{run_fuzz_case, FuzzOptions};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Run-time knobs that do **not** affect case outcomes (and are therefore
/// not persisted or fingerprinted).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads. Any value produces the identical campaign.
    pub workers: usize,
    /// Stop after completing this many *new* cases — the programmatic
    /// interrupt (`campaign resume` finishes the rest).
    pub limit: Option<u32>,
    /// Checkpoint each case's lockstep run mid-flight
    /// (`cases/case-N.ckpt`, written every [`CASE_CHECKPOINT_EVERY`]
    /// cycles): a kill inside one *giant* case resumes from the last
    /// checkpoint instead of recomputing the whole horizon. Off by
    /// default — worth it only when a single case runs long.
    pub case_checkpoint: bool,
    /// Run only the case indices in this half-open range — the
    /// distributed-shard hook (`rtl-dist`): each machine executes its
    /// slice of the same campaign, and because every case's outcome
    /// depends only on `(config, index)`, the union of the slices is
    /// bit-identical to a single-machine run. Cases outside the range are
    /// left unrun (the report shows them as gaps). `None` runs
    /// everything.
    pub case_range: Option<std::ops::Range<u32>>,
    /// Telemetry tap (disabled/no-op by default), threaded into every
    /// worker's lockstep sessions. Deterministic counters
    /// (`campaign/cases_executed`, `campaign/cycles_verified`,
    /// `campaign/divergences`, `campaign/shrink_probes`, ...) fold to
    /// byte-identical totals across worker counts and kill+resume;
    /// spans and gauges are wall-clock. Recording never perturbs the
    /// campaign's report, manifest or case records. One caveat:
    /// `campaign/bin_cache_hits`/`_misses` depend on which worker wins a
    /// compile race, so they are only schedule-stable when the engine
    /// set reaches a warm cache or never compiles at all.
    pub recorder: Recorder,
    /// Collect a per-case execution profile (`rtl-prof`): each case runs
    /// its lanes with a fresh collecting hook, publishes the snapshot as
    /// a `cases/case-N.profile` sidecar *before* the case record (the
    /// record stays the commit point, so worker counts and kill+resume
    /// cannot change a published sidecar), and folds the counters into
    /// the recorder as deterministic `profile/<component>/<event>`
    /// deltas. Case outcomes, records and the campaign fingerprint are
    /// unaffected. Not combinable with `case_checkpoint`: a mid-case
    /// resume would only tally the post-resume cycles.
    pub profile: bool,
    /// Arm the divergence flight recorder: each case runs with a fresh
    /// bounded ring capturing its deterministic counter events in call
    /// order, and when a case ends abnormally (divergence, oracle
    /// contradiction, halt, harness error) the ring is dumped as a
    /// `cases/case-N.flight.jsonl` sidecar *before* the case record —
    /// same publication discipline as profiles, so the dump is
    /// byte-identical across worker counts and kill+resume. Agreed cases
    /// leave no sidecar. Not combinable with `case_checkpoint`: a case
    /// resumed mid-run would only capture its post-resume events.
    pub flight: bool,
}

/// The cycle cadence of `--case-checkpoint` lockstep checkpoints.
pub const CASE_CHECKPOINT_EVERY: u64 = 256;

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            limit: None,
            case_checkpoint: false,
            case_range: None,
            recorder: Recorder::disabled(),
            profile: false,
            flight: false,
        }
    }
}

/// Live progress callbacks, invoked on the calling thread in completion
/// order (completion order is scheduling-dependent; the final report is
/// not).
pub trait Progress {
    /// One case just completed and its record is on disk.
    fn case_done(&mut self, record: &CaseRecord, done: u32, total: u32);
}

/// Ignores progress.
pub struct NoProgress;

impl Progress for NoProgress {
    fn case_done(&mut self, _record: &CaseRecord, _done: u32, _total: u32) {}
}

/// The result of a campaign run or resume.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign configuration.
    pub config: CampaignConfig,
    /// The corpus replay performed before fuzzing (fresh runs over a
    /// pre-seeded corpus only).
    pub replay: Option<ReplayReport>,
    /// Every case record, by index; `None` where a case has not run yet
    /// (an interrupted campaign).
    pub records: Vec<Option<CaseRecord>>,
    /// Corpus entries added by *this* invocation, sorted.
    pub new_corpus: Vec<String>,
    /// Wall-clock time of this invocation (excluded from the
    /// `Display` rendering, which must stay deterministic).
    pub elapsed: Duration,
}

impl CampaignReport {
    /// Completed cases.
    pub fn completed(&self) -> u32 {
        self.records.iter().flatten().count() as u32
    }

    /// `true` when every case has a record.
    pub fn complete(&self) -> bool {
        self.completed() as usize == self.records.len()
    }

    /// Completed cases that agreed over their full horizon.
    pub fn agreed(&self) -> u32 {
        self.count(|s| matches!(s, CaseStatus::Agreed))
    }

    /// Completed cases whose lanes diverged.
    pub fn diverged(&self) -> u32 {
        self.count(|s| matches!(s, CaseStatus::Diverged { .. }))
    }

    /// Total cycles verified across completed cases.
    pub fn cycles_verified(&self) -> u64 {
        self.records.iter().flatten().map(|r| r.cycles).sum()
    }

    /// `true` when the campaign is complete, every case agreed, and no
    /// replayed corpus entry reproduced its divergence.
    pub fn clean(&self) -> bool {
        self.complete()
            && self.agreed() as usize == self.records.len()
            && self.replay.as_ref().is_none_or(ReplayReport::clean)
    }

    /// Total verified cycles per case status, in the fixed order
    /// `agreed, halted, diverged, error` — the denominator execution
    /// profiles need in the same document (profile events per *agreed*
    /// cycle is the meaningful ratio; diverged cases stop early).
    pub fn cycles_by_status(&self) -> [(&'static str, u64); 4] {
        let mut totals = [("agreed", 0), ("halted", 0), ("diverged", 0), ("error", 0)];
        for record in self.records.iter().flatten() {
            let slot = match &record.status {
                CaseStatus::Agreed => 0,
                CaseStatus::Halted { .. } => 1,
                CaseStatus::Diverged { .. } => 2,
                CaseStatus::Error { .. } => 3,
            };
            totals[slot].1 += record.cycles;
        }
        totals
    }

    fn count(&self, want: impl Fn(&CaseStatus) -> bool) -> u32 {
        self.records
            .iter()
            .flatten()
            .filter(|r| want(&r.status))
            .count() as u32
    }

    /// Per-lane totals aggregated over every completed case's persisted
    /// [`LaneAccess`](crate::state::LaneAccess) stats, sorted by lane
    /// name. Purely a function of the records, so the rendering stays
    /// deterministic (and identical between a single-machine run and a
    /// merged shard set).
    pub fn lane_totals(&self) -> Vec<LaneTotals> {
        aggregate_lanes(self.records.iter().flatten().map(|r| &r.lane_stats[..]))
    }
}

/// Aggregated per-lane statistics across a set of case records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneTotals {
    /// Engine lane name.
    pub lane: String,
    /// Cases this lane reported stats for.
    pub cases: u64,
    /// Total cycles the lane executed.
    pub cycles: u64,
    /// Total register/memory accesses the lane performed.
    pub accesses: u64,
}

/// Folds per-case [`LaneAccess`](crate::state::LaneAccess) stats into
/// sorted per-lane totals (shared by campaign, shard and replay reports).
pub fn aggregate_lanes<'a>(
    stats: impl IntoIterator<Item = &'a [crate::state::LaneAccess]>,
) -> Vec<LaneTotals> {
    let mut lanes: std::collections::BTreeMap<&str, LaneTotals> = Default::default();
    for case in stats {
        for stat in case {
            let entry = lanes.entry(&stat.lane).or_insert_with(|| LaneTotals {
                lane: stat.lane.clone(),
                cases: 0,
                cycles: 0,
                accesses: 0,
            });
            entry.cases += 1;
            entry.cycles += stat.cycles;
            entry.accesses += stat.accesses;
        }
    }
    lanes.into_values().collect()
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "campaign: {} cases from seed {}, engines [{}], {} cycles/case",
            self.config.cases,
            self.config.seed,
            self.config.engines.join(", "),
            self.config.generator.cycles,
        )?;
        if let Some(replay) = &self.replay {
            write!(f, "{replay}")?;
        }
        for record in self.records.iter().flatten() {
            match &record.status {
                CaseStatus::Agreed => {}
                CaseStatus::Halted { detail } => writeln!(
                    f,
                    "  case {} (seed {}): halted after {} cycles: {detail}",
                    record.index, record.seed, record.cycles
                )?,
                CaseStatus::Error { detail } => writeln!(
                    f,
                    "  case {} (seed {}): harness error: {detail}",
                    record.index, record.seed
                )?,
                CaseStatus::Diverged {
                    cycle,
                    kind,
                    corpus,
                } => {
                    write!(
                        f,
                        "  case {} (seed {}): DIVERGED at cycle {cycle} ({kind})",
                        record.index, record.seed
                    )?;
                    match corpus {
                        Some(name) => writeln!(f, " -> corpus {name}")?,
                        None => writeln!(f, " (shrink did not reproduce)")?,
                    }
                }
            }
        }
        for totals in self.lane_totals() {
            writeln!(
                f,
                "lane {}: {} cases, {} cycles, {} accesses",
                totals.lane, totals.cases, totals.cycles, totals.accesses
            )?;
        }
        let by_status = self.cycles_by_status();
        writeln!(
            f,
            "cycles by status: {}",
            by_status
                .iter()
                .map(|(tag, cycles)| format!("{tag} {cycles}"))
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        let done = self.completed();
        write!(
            f,
            "summary: {}/{done} agreed, {} diverged, {} cycles verified",
            self.agreed(),
            self.diverged(),
            self.cycles_verified(),
        )?;
        if !self.complete() {
            write!(
                f,
                " ({done}/{} cases done, resume to continue)",
                self.records.len()
            )?;
        }
        writeln!(f)
    }
}

/// The registry campaign workers run against: every default lane, the
/// `vm-fault` self-test lane, and the `rust` stream lane re-registered
/// over the campaign's disk-backed binary cache.
pub fn campaign_registry(bin_cache: Option<Arc<BinaryCache>>) -> EngineRegistry {
    let mut registry = rtl_cosim::default_registry();
    registry.register(Box::new(FaultyVmFactory::default()));
    if let Some(cache) = bin_cache {
        registry.register(Box::new(GeneratedRustFactory::cached(cache)));
    }
    registry
}

/// Starts a fresh campaign in `dir` (which must not already hold one),
/// replaying any pre-seeded corpus first, then fuzzing all cases.
///
/// # Errors
///
/// An already-initialized directory, unknown engine names, corrupt
/// pre-seeded corpus entries, lane failures, or I/O.
pub fn run(
    dir: &CampaignDir,
    config: &CampaignConfig,
    options: &RunOptions,
    progress: &mut dyn Progress,
) -> Result<CampaignReport, CampaignError> {
    let cache = Arc::new(BinaryCache::at_dir(dir.bin_cache()));
    validate_engines(config, &campaign_registry(Some(Arc::clone(&cache))))?;
    dir.init(config)?;

    // Pre-seeded regression scenarios replay before any fuzzing: a known
    // bug resurfacing is worth more than a new random case.
    let entries = corpus::load_all(&dir.corpus())?;
    options
        .recorder
        .count("campaign", "corpus_replayed", entries.len() as u64);
    let replay = if entries.is_empty() {
        None
    } else {
        let registry = campaign_registry(Some(Arc::clone(&cache)));
        Some(corpus::replay(&registry, &entries, Some(&config.engines))?)
    };

    let records = vec![None; config.cases as usize];
    execute(dir, config, options, cache, records, replay, progress)
}

/// Resumes the campaign in `dir`: validates the stored configuration's
/// fingerprint, loads completed case records, and runs only the gaps.
///
/// # Errors
///
/// A missing or corrupt campaign, a fingerprint mismatch, lane failures,
/// or I/O.
pub fn resume(
    dir: &CampaignDir,
    options: &RunOptions,
    progress: &mut dyn Progress,
) -> Result<CampaignReport, CampaignError> {
    let config = dir.load()?;
    let records = dir.load_cases(config.cases)?;
    let cache = Arc::new(BinaryCache::at_dir(dir.bin_cache()));
    validate_engines(&config, &campaign_registry(Some(Arc::clone(&cache))))?;
    execute(dir, &config, options, cache, records, None, progress)
}

/// Replays the campaign's corpus standalone (the CI entry point).
///
/// # Errors
///
/// A corrupt corpus entry, lane failures, or I/O.
pub fn replay_corpus(
    dir: &CampaignDir,
    engines: Option<&[String]>,
) -> Result<ReplayReport, CampaignError> {
    let entries = corpus::load_all(&dir.corpus())?;
    let cache = Arc::new(BinaryCache::at_dir(dir.bin_cache()));
    let registry = campaign_registry(Some(cache));
    corpus::replay(&registry, &entries, engines)
}

fn validate_engines(
    config: &CampaignConfig,
    registry: &EngineRegistry,
) -> Result<(), CampaignError> {
    registry
        .parse_list(&config.engines.join(","))
        .map(|_| ())
        .map_err(CampaignError::Config)
}

struct DoneCase {
    record: CaseRecord,
    corpus: Option<String>,
}

fn execute(
    dir: &CampaignDir,
    config: &CampaignConfig,
    options: &RunOptions,
    cache: Arc<BinaryCache>,
    mut records: Vec<Option<CaseRecord>>,
    replay: Option<ReplayReport>,
    progress: &mut dyn Progress,
) -> Result<CampaignReport, CampaignError> {
    let started = Instant::now();
    if options.profile && options.case_checkpoint {
        return Err(CampaignError::Config(
            "profiling cannot be combined with per-case checkpointing: a case resumed \
             mid-run would only profile its post-resume cycles"
                .into(),
        ));
    }
    if options.flight && options.case_checkpoint {
        return Err(CampaignError::Config(
            "the flight recorder cannot be combined with per-case checkpointing: a case \
             resumed mid-run would only capture its post-resume events"
                .into(),
        ));
    }
    let mut fuzz = config.fuzz_options();
    // The recorder reaches every lane session and lockstep harness from
    // here; it is a run-time tap, so the config fingerprint is unchanged.
    fuzz.cosim.recorder = options.recorder.clone();
    let mut pending: Vec<u32> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_none())
        .map(|(i, _)| i as u32)
        .filter(|i| options.case_range.as_ref().is_none_or(|r| r.contains(i)))
        .collect();
    if let Some(limit) = options.limit {
        pending.truncate(limit as usize);
    }

    let next = AtomicU32::new(0);
    let abort = AtomicBool::new(false);
    let case_checkpoint = options.case_checkpoint;
    let profile = options.profile;
    let flight = options.flight;
    // A kill between record publication and checkpoint removal can leave
    // a stale .ckpt next to a completed record; sweep those up front.
    for (index, record) in records.iter().enumerate() {
        if record.is_some() {
            let _ = std::fs::remove_file(case_checkpoint_path(dir, index as u32));
        }
    }
    let workers = options.workers.clamp(1, pending.len().max(1));
    options
        .recorder
        .gauge("campaign", "workers", workers as u64);
    let mut new_corpus = BTreeSet::new();
    let mut first_error: Option<CampaignError> = None;

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<Result<DoneCase, CampaignError>>();
        for worker in 0..workers {
            let tx = tx.clone();
            let (pending, next, abort) = (&pending, &next, &abort);
            let (fuzz, cache) = (&fuzz, Arc::clone(&cache));
            let recorder = options.recorder.clone();
            scope.spawn(move || {
                let _worker_span = recorder.span("campaign", "worker");
                let mut claimed = 0u64;
                let registry = campaign_registry(Some(cache));
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let slot = next.fetch_add(1, Ordering::Relaxed) as usize;
                    let Some(&index) = pending.get(slot) else {
                        break;
                    };
                    claimed += 1;
                    let case_span = recorder.span("campaign", "case");
                    let result = run_one(
                        &registry,
                        config,
                        fuzz,
                        index,
                        dir,
                        case_checkpoint,
                        profile,
                        flight,
                        &recorder,
                    );
                    drop(case_span);
                    let failed = result.is_err();
                    if tx.send(result).is_err() || failed {
                        abort.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                // Which worker claimed how many cases is scheduling
                // luck — a utilization gauge, never a counter.
                recorder.gauge("campaign", &format!("worker_{worker}_cases"), claimed);
            });
        }
        drop(tx);

        let mut done = records.iter().flatten().count() as u32;
        for result in rx {
            match result {
                Ok(case) => {
                    done += 1;
                    progress.case_done(&case.record, done, config.cases);
                    if let Some(name) = case.corpus {
                        new_corpus.insert(name);
                    }
                    let index = case.record.index as usize;
                    records[index] = Some(case.record);
                }
                Err(e) => {
                    abort.store(true, Ordering::Relaxed);
                    first_error.get_or_insert(e);
                }
            }
        }
    });

    if let Some(e) = first_error {
        return Err(e);
    }
    // Cache effectiveness for this invocation. Which worker wins a
    // compile race can shift a hit into a miss, so these counters are
    // only schedule-stable for engine sets that reach a warm cache (or
    // none at all) — the caveat lives on `RunOptions::recorder`.
    let (hits, misses) = cache.stats();
    options.recorder.count("campaign", "bin_cache_hits", hits);
    options
        .recorder
        .count("campaign", "bin_cache_misses", misses);
    Ok(CampaignReport {
        config: config.clone(),
        replay,
        records,
        new_corpus: new_corpus.into_iter().collect(),
        elapsed: started.elapsed(),
    })
}

/// The per-case lockstep checkpoint path (`--case-checkpoint`).
fn case_checkpoint_path(dir: &CampaignDir, index: u32) -> std::path::PathBuf {
    dir.cases().join(format!("case-{index:06}.ckpt"))
}

/// What (if anything) triggers a flight dump for this record: a one-line
/// deterministic description of the abnormal ending, `None` for agreed
/// cases.
fn flight_trigger(record: &CaseRecord) -> Option<String> {
    let what = match &record.status {
        CaseStatus::Agreed => return None,
        CaseStatus::Halted { detail } => {
            format!("halted after {} cycles: {detail}", record.cycles)
        }
        CaseStatus::Error { detail } => format!("harness error: {detail}"),
        CaseStatus::Diverged { cycle, kind, .. } => {
            format!("diverged at cycle {cycle} ({kind})")
        }
    };
    Some(format!(
        "case {} (seed {}): {what}",
        record.index, record.seed
    ))
}

/// Renders a flight dump as a self-contained `asim2-events v1` log: the
/// meta header, the ring's events oldest-first, and a closing
/// `flight/trigger` mark naming what fired the dump.
fn render_flight(events: &[rtl_obs::Event], trigger: &str) -> String {
    let mut text = format!(
        "{}\n",
        rtl_obs::Event::Meta {
            format: rtl_obs::FORMAT.into()
        }
        .render()
    );
    for event in events {
        text.push_str(&event.render());
        text.push('\n');
    }
    text.push_str(
        &rtl_obs::Event::Mark {
            src: "flight".into(),
            key: "trigger".into(),
            detail: Some(trigger.into()),
        }
        .render(),
    );
    text.push('\n');
    text
}

/// Folds every completed case's profile sidecar into one aggregate
/// [`Profile`](rtl_core::Profile). Because each sidecar is a pure
/// function of `(config, index)`, the fold is byte-identical across
/// worker counts, kill+resume splits, and shard merges.
///
/// # Errors
///
/// A completed case without a sidecar (the campaign ran without
/// profiling), a corrupt sidecar, or I/O.
pub fn fold_profiles(
    dir: &CampaignDir,
    report: &CampaignReport,
) -> Result<rtl_core::Profile, CampaignError> {
    let mut total = rtl_core::Profile::default();
    for record in report.records.iter().flatten() {
        let path = dir.profile_path(record.index);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            CampaignError::Config(format!(
                "{}: case {} has no profile sidecar ({e}); run the campaign with \
                 profiling on",
                path.display(),
                record.index
            ))
        })?;
        let profile = rtl_core::Profile::parse(&text)
            .map_err(|e| CampaignError::Corrupt(format!("{}: {e}", path.display())))?;
        total.merge(&profile);
    }
    Ok(total)
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    registry: &EngineRegistry,
    config: &CampaignConfig,
    fuzz: &FuzzOptions,
    index: u32,
    dir: &CampaignDir,
    case_checkpoint: bool,
    profile: bool,
    flight: bool,
    recorder: &Recorder,
) -> Result<DoneCase, CampaignError> {
    // Thread the per-case lockstep checkpoint through: write it while the
    // case runs, resume from a leftover document (a kill mid-case), and
    // remove it once the record is durable.
    let ckpt_path = case_checkpoint_path(dir, index);
    // A *fresh* hook per case: the sidecar is the case's own tally, a
    // pure function of (config, index), regardless of which worker ran
    // it or what else this process executed.
    let profile_hook = profile.then(rtl_core::ProfileHook::collecting);
    // Likewise a fresh flight ring per case: the lockstep run is
    // single-threaded, so the captured counter order is a pure function
    // of (config, index).
    let flight_ring =
        flight.then(|| Arc::new(rtl_obs::FlightRing::new(rtl_obs::FlightRing::DEFAULT_CAP)));
    let fuzz_for_case;
    let fuzz = if case_checkpoint || profile_hook.is_some() || flight_ring.is_some() {
        let mut patched = fuzz.clone();
        if case_checkpoint {
            patched.cosim.checkpoint = Some(rtl_cosim::LockstepCheckpoint {
                path: ckpt_path.clone(),
                every: CASE_CHECKPOINT_EVERY,
            });
            if ckpt_path.exists() {
                patched.cosim.resume = Some(ckpt_path.clone());
            }
        }
        if let Some(hook) = &profile_hook {
            patched.cosim.profile = hook.clone();
        }
        if let Some(ring) = &flight_ring {
            patched.cosim.recorder = patched.cosim.recorder.with_flight(Arc::clone(ring));
        }
        fuzz_for_case = patched;
        &fuzz_for_case
    } else {
        fuzz
    };
    let case = run_fuzz_case(registry, fuzz, index)?;
    // Snapshot the ring *now*, before any shrink probes can run: the dump
    // must hold only the case's own final events.
    let flight_snapshot = flight_ring.as_ref().map(|ring| ring.snapshot());
    // Shrink probes must not inherit the case's checkpoint/resume paths
    // (they re-run many *different* candidate scenarios), its profile
    // hook (hook clones share one tally; probe work would pollute the
    // case's sidecar), or its flight-tapped recorder.
    let probe_cosim = rtl_cosim::CosimOptions {
        checkpoint: None,
        resume: None,
        profile: rtl_core::ProfileHook::disabled(),
        recorder: recorder.clone(),
        ..fuzz.cosim.clone()
    };
    let (status, corpus) = match case.divergence {
        None => {
            let status = match case.stop {
                StopReason::CycleLimit => CaseStatus::Agreed,
                StopReason::Halt(halt) => CaseStatus::Halted {
                    detail: halt.to_string(),
                },
                StopReason::Error(e) => CaseStatus::Error {
                    detail: e.to_string(),
                },
            };
            (status, None)
        }
        Some(report) => {
            recorder.count("campaign", "divergences", 1);
            // Shrink immediately (deterministic per case, so parallelism
            // is preserved) and archive the minimal reproduction.
            let shrunk = shrink_divergence(
                registry,
                &config.engines,
                case.seed,
                &config.generator,
                &probe_cosim,
            )?;
            let corpus = match &shrunk {
                Some(shrunk) => {
                    recorder.count("campaign", "shrink_probes", u64::from(shrunk.attempts));
                    recorder.count("campaign", "corpus_entries", 1);
                    Some(
                        corpus::save(&dir.corpus(), shrunk, &config.engines, config.compare_every)?
                            .name,
                    )
                }
                None => None,
            };
            let status = CaseStatus::Diverged {
                cycle: u64::try_from(report.cycle).unwrap_or(0),
                kind: kind_label(&report.kind),
                corpus: corpus.clone(),
            };
            (status, corpus)
        }
    };
    let record = CaseRecord {
        index,
        seed: case.seed,
        cycles: case.cycles,
        lane_stats: case
            .stats
            .iter()
            .map(|s| crate::state::LaneAccess {
                lane: s.lane.clone(),
                cycles: s.stats.cycles,
                accesses: s.stats.total_accesses(),
            })
            .collect(),
        status,
    };
    recorder.count("campaign", "cases_executed", 1);
    recorder.count("campaign", &format!("cases_{}", record.status.tag()), 1);
    recorder.count("campaign", "cycles_verified", record.cycles);
    // The profile sidecar publishes *before* the record: the record is
    // the commit point, so a kill between the two re-runs the case and
    // rewrites the identical sidecar. The counters reach the recorder as
    // per-case deltas, the same scheme lint counters use.
    if let Some(hook) = &profile_hook {
        let snapshot = hook.snapshot();
        crate::state::write_atomic(&dir.profile_path(index), snapshot.render().as_bytes())?;
        for (key, n) in snapshot.iter() {
            recorder.count("profile", key, n);
        }
    }
    // The flight dump publishes before the record for the same reason:
    // a kill between the two re-runs the case and rewrites the identical
    // sidecar. Only abnormal endings leave a dump.
    if let Some(events) = &flight_snapshot {
        if let Some(trigger) = flight_trigger(&record) {
            crate::state::write_atomic(
                &dir.flight_path(index),
                render_flight(events, &trigger).as_bytes(),
            )?;
            recorder.count("campaign", "flight_dumps", 1);
        }
    }
    // Publish from the worker (atomic temp-file + rename), so record I/O
    // overlaps across workers instead of serializing in the collector.
    // Once this returns, the case is durable: a kill right after still
    // resumes past it.
    dir.write_case(&record)?;
    if case_checkpoint {
        let _ = std::fs::remove_file(&ckpt_path);
    }
    Ok(DoneCase { record, corpus })
}
