//! The persistent divergence corpus: every bug a campaign ever found,
//! kept as a minimal, replayable regression scenario.
//!
//! One entry is four sibling files under the campaign's `corpus/`:
//!
//! ```text
//! <name>.asim  — the shrunk specification source
//! <name>.stim  — the stimulus script, one decimal word per line
//! <name>.ckpt  — the reference engine's state at the divergence cycle,
//!                in the fingerprinted session checkpoint format
//! <name>.json  — metadata: horizon, engines, the expected divergence,
//!                and shrink provenance
//! ```
//!
//! The `.ckpt` file reuses [`rtl_core::write_checkpoint`] verbatim: its
//! design fingerprint ties the checkpoint to the `.asim` next to it (a
//! corrupted or mismatched entry is rejected on load), and replays verify
//! the recomputed reference state byte-for-byte before trusting the entry.

use crate::error::CampaignError;
use crate::json::Json;
use crate::shrink::Shrunk;
use crate::state::write_atomic;
use rtl_core::{read_checkpoint, write_checkpoint, Session, Until, Word};
use rtl_cosim::{CosimOptions, CosimOutcome, DivergenceKind};
use rtl_interp::Interpreter;
use rtl_machines::Scenario;
use std::path::Path;

/// The corpus metadata format line; bump on breaking changes.
pub const FORMAT: &str = "asim2-corpus v1";

/// A stable one-token label for a divergence kind (`trace`,
/// `output:x3`, `cells:m0@5`, `vcd:x3`, `stream:rust`, ...).
pub fn kind_label(kind: &DivergenceKind) -> String {
    match kind {
        DivergenceKind::Error => "error".into(),
        DivergenceKind::Trace => "trace".into(),
        DivergenceKind::CycleCounter => "cycle-counter".into(),
        DivergenceKind::Output { component } => format!("output:{component}"),
        DivergenceKind::Cells { component, addr } => format!("cells:{component}@{addr}"),
        DivergenceKind::Vcd { component } => format!("vcd:{component}"),
        DivergenceKind::Stream { lane } => format!("stream:{lane}"),
        DivergenceKind::Digest => "digest".into(),
        DivergenceKind::Oracle { component, .. } => format!("oracle:{component}"),
    }
}

/// A stable fingerprint of *which design and stimulus* a corpus entry
/// reproduces: the specification source text, the cycle horizon, and the
/// input script, hashed with the session-checkpoint FNV hasher. This —
/// not the shape-only
/// [`design_fingerprint`](rtl_core::design_fingerprint), which collides
/// across fuzz designs sharing a component-naming scheme — is the dedup
/// key: two entries with equal fingerprints reproduce the identical run,
/// so archiving both would only bloat the corpus. (Generated scenarios
/// embed their seed in the spec title, so within one campaign distinct
/// seeds never collide and dedup stays order-independent.)
pub fn entry_fingerprint(scenario: &Scenario) -> u64 {
    let mut fp = rtl_core::Fingerprint::new();
    fp.write_str("asim2-corpus-entry v1");
    fp.write_str(&scenario.source);
    fp.write_u64(scenario.cycles);
    fp.write_u64(scenario.input.len() as u64);
    for &word in &scenario.input {
        fp.write_u64(word as u64);
    }
    fp.finish()
}

/// One saved divergence-regression scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Entry name (`seed-7`), also the file stem.
    pub name: String,
    /// The minimal scenario (source, horizon, stimulus).
    pub scenario: Scenario,
    /// The engine lanes the divergence was found between.
    pub engines: Vec<String>,
    /// The comparison stride it was found at.
    pub compare_every: u64,
    /// Expected first divergent cycle.
    pub cycle: u64,
    /// Expected divergence kind label (see [`kind_label`]).
    pub kind: String,
    /// Shrink provenance: originating fuzz seed.
    pub seed: u64,
    /// Shrink provenance: final generator size knob.
    pub size: usize,
}

/// Saves a shrunk divergence into the corpus directory — unless an entry
/// with the same [`entry_fingerprint`] already exists, in which case the
/// existing entry is returned instead of archiving a duplicate (merged
/// shard corpora and long campaigns re-finding a known bug would
/// otherwise accumulate identical reproductions under different names).
/// Also writes the reference checkpoint: the `interp` engine's
/// architectural state after the verified prefix (the cycles *before*
/// the divergence), in the session checkpoint format.
///
/// # Errors
///
/// File-system failure, or a scenario that no longer elaborates.
pub fn save(
    corpus_dir: &Path,
    shrunk: &Shrunk,
    engines: &[String],
    compare_every: u64,
) -> Result<CorpusEntry, CampaignError> {
    let entry = CorpusEntry {
        name: format!("seed-{}", shrunk.seed),
        scenario: shrunk.scenario.clone(),
        engines: engines.to_vec(),
        compare_every,
        cycle: u64::try_from(shrunk.report.cycle).unwrap_or(0),
        kind: kind_label(&shrunk.report.kind),
        seed: shrunk.seed,
        size: shrunk.size,
    };
    if let Some(existing) = find_by_fingerprint(corpus_dir, entry_fingerprint(&entry.scenario))? {
        return load_one(corpus_dir, &existing);
    }
    std::fs::create_dir_all(corpus_dir)?;
    write_atomic(
        &corpus_dir.join(format!("{}.asim", entry.name)),
        entry.scenario.source.as_bytes(),
    )?;
    write_atomic(
        &corpus_dir.join(format!("{}.stim", entry.name)),
        render_stimulus(&entry.scenario.input).as_bytes(),
    )?;
    write_atomic(
        &corpus_dir.join(format!("{}.ckpt", entry.name)),
        &reference_checkpoint(&entry)?,
    )?;
    let meta = Json::Obj(vec![
        ("format".into(), Json::str(FORMAT)),
        ("name".into(), Json::str(&entry.name)),
        (
            "design_fp".into(),
            Json::str(format!("{:016x}", entry_fingerprint(&entry.scenario))),
        ),
        ("cycles".into(), Json::num(entry.scenario.cycles)),
        (
            "engines".into(),
            Json::Arr(entry.engines.iter().map(Json::str).collect()),
        ),
        ("compare_every".into(), Json::num(entry.compare_every)),
        (
            "divergence".into(),
            Json::Obj(vec![
                ("cycle".into(), Json::num(entry.cycle)),
                ("kind".into(), Json::str(&entry.kind)),
            ]),
        ),
        (
            "provenance".into(),
            Json::Obj(vec![
                ("seed".into(), Json::num(entry.seed)),
                ("size".into(), Json::num(entry.size)),
                ("input_len".into(), Json::num(entry.scenario.input.len())),
            ]),
        ),
    ]);
    write_atomic(
        &corpus_dir.join(format!("{}.json", entry.name)),
        meta.render().as_bytes(),
    )?;
    Ok(entry)
}

/// The reference (`interp`) state after the entry's verified prefix, as a
/// session checkpoint document.
fn reference_checkpoint(entry: &CorpusEntry) -> Result<Vec<u8>, CampaignError> {
    let design = entry
        .scenario
        .design()
        .map_err(|e| CampaignError::Corrupt(format!("corpus scenario: {e}")))?;
    let mut session = Session::over(Interpreter::new(&design))
        .scripted(entry.scenario.input.iter().copied())
        .build();
    // The divergence happened *at* entry.cycle, so every cycle before it
    // is verified common ground across the lanes.
    let outcome = session.run(Until::Cycles(entry.cycle));
    if !outcome.completed() {
        return Err(CampaignError::Corrupt(format!(
            "reference engine stopped before the divergence cycle: {}",
            outcome.stop
        )));
    }
    let mut doc = Vec::new();
    write_checkpoint(&design, session.state(), &mut doc)?;
    Ok(doc)
}

/// Every entry name under `corpus_dir`, sorted. A missing directory is an
/// empty corpus.
///
/// # Errors
///
/// File-system failure.
pub fn entry_names(corpus_dir: &Path) -> Result<Vec<String>, CampaignError> {
    let mut names = Vec::new();
    let listing = match std::fs::read_dir(corpus_dir) {
        Ok(listing) => listing,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(CampaignError::Io(e)),
    };
    for dirent in listing {
        let path = dirent?.path();
        if path.extension().is_some_and(|e| e == "json") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                // Skip dotfiles: a kill between write and rename can leave
                // write_atomic's `.tmp-*` sibling behind, and it must not
                // poison the corpus on the next load.
                if !stem.starts_with('.') {
                    names.push(stem.to_string());
                }
            }
        }
    }
    names.sort();
    Ok(names)
}

/// Loads every corpus entry under `corpus_dir`, sorted by name. A missing
/// directory is an empty corpus.
///
/// # Errors
///
/// A corrupt entry (bad metadata, missing sibling file, or a `.ckpt`
/// whose design fingerprint does not match its `.asim`).
pub fn load_all(corpus_dir: &Path) -> Result<Vec<CorpusEntry>, CampaignError> {
    entry_names(corpus_dir)?
        .iter()
        .map(|name| load_one(corpus_dir, name))
        .collect()
}

/// The name of the existing entry whose [`entry_fingerprint`] equals
/// `fp`, if any — the dedup probe. Reads the `design_fp` meta field;
/// entries written before the field existed are fingerprinted from their
/// files.
fn find_by_fingerprint(corpus_dir: &Path, fp: u64) -> Result<Option<String>, CampaignError> {
    for name in entry_names(corpus_dir)? {
        let meta_path = corpus_dir.join(format!("{name}.json"));
        let meta = Json::parse(&std::fs::read_to_string(&meta_path)?)
            .map_err(|e| CampaignError::Corrupt(format!("{}: {e}", meta_path.display())))?;
        let existing = match meta
            .get("design_fp")
            .and_then(Json::as_str)
            .and_then(|h| u64::from_str_radix(h, 16).ok())
        {
            Some(stored) => stored,
            None => {
                let source = std::fs::read_to_string(corpus_dir.join(format!("{name}.asim")))?;
                let input = parse_stimulus(&std::fs::read_to_string(
                    corpus_dir.join(format!("{name}.stim")),
                )?)
                .map_err(|e| CampaignError::Corrupt(format!("{name}.stim: {e}")))?;
                let cycles = meta.get("cycles").and_then(Json::as_u64).ok_or_else(|| {
                    CampaignError::Corrupt(format!("{}: missing cycles", meta_path.display()))
                })?;
                entry_fingerprint(&Scenario {
                    name: format!("corpus/{name}"),
                    source,
                    cycles,
                    input,
                })
            }
        };
        if existing == fp {
            return Ok(Some(name));
        }
    }
    Ok(None)
}

fn load_one(corpus_dir: &Path, name: &str) -> Result<CorpusEntry, CampaignError> {
    let meta_path = corpus_dir.join(format!("{name}.json"));
    let corrupt = |m: String| CampaignError::Corrupt(format!("{}: {m}", meta_path.display()));
    let meta = Json::parse(&std::fs::read_to_string(&meta_path)?).map_err(corrupt)?;
    match meta.get("format").and_then(Json::as_str) {
        Some(FORMAT) => {}
        other => {
            return Err(corrupt(format!(
                "unsupported corpus format {other:?} (expected {FORMAT:?})"
            )))
        }
    }
    let num = |field: &str| {
        meta.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt(format!("missing numeric field {field:?}")))
    };
    let divergence = meta
        .get("divergence")
        .ok_or_else(|| corrupt("missing divergence".into()))?;
    let provenance = meta
        .get("provenance")
        .ok_or_else(|| corrupt("missing provenance".into()))?;
    let engines = meta
        .get("engines")
        .and_then(Json::as_arr)
        .ok_or_else(|| corrupt("missing engines".into()))?
        .iter()
        .map(|e| {
            e.as_str()
                .map(str::to_string)
                .ok_or_else(|| corrupt("engine names must be strings".into()))
        })
        .collect::<Result<Vec<_>, _>>()?;

    let source = std::fs::read_to_string(corpus_dir.join(format!("{name}.asim")))?;
    let input = parse_stimulus(&std::fs::read_to_string(
        corpus_dir.join(format!("{name}.stim")),
    )?)
    .map_err(corrupt)?;
    let entry = CorpusEntry {
        name: name.to_string(),
        scenario: Scenario {
            name: format!("corpus/{name}"),
            source,
            cycles: num("cycles")?,
            input,
        },
        engines,
        compare_every: num("compare_every")?,
        cycle: divergence
            .get("cycle")
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt("missing divergence.cycle".into()))?,
        kind: divergence
            .get("kind")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| corrupt("missing divergence.kind".into()))?,
        seed: provenance
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt("missing provenance.seed".into()))?,
        size: provenance
            .get("size")
            .and_then(Json::as_u64)
            .and_then(|s| usize::try_from(s).ok())
            .ok_or_else(|| corrupt("missing provenance.size".into()))?,
    };

    // Integrity: a stored entry fingerprint must match the sibling files
    // it claims to describe (entries predating the field are accepted).
    if let Some(stored) = meta
        .get("design_fp")
        .and_then(Json::as_str)
        .and_then(|h| u64::from_str_radix(h, 16).ok())
    {
        if stored != entry_fingerprint(&entry.scenario) {
            return Err(corrupt(
                "entry fingerprint (design_fp) does not match the scenario files".into(),
            ));
        }
    }

    // Integrity: the stored checkpoint must load over this entry's design
    // (the fingerprint ties .ckpt to .asim) and match the recomputed
    // reference state byte-for-byte.
    let design = entry
        .scenario
        .design()
        .map_err(|e| corrupt(format!("scenario does not elaborate: {e}")))?;
    let ckpt_path = corpus_dir.join(format!("{name}.ckpt"));
    let stored = std::fs::read(&ckpt_path)?;
    read_checkpoint(&design, &mut &stored[..])
        .map_err(|e| CampaignError::Corrupt(format!("{}: {e}", ckpt_path.display())))?;
    let recomputed = reference_checkpoint(&entry)?;
    if recomputed != stored {
        return Err(CampaignError::Corrupt(format!(
            "{}: reference state differs from the recorded checkpoint",
            ckpt_path.display()
        )));
    }
    Ok(entry)
}

/// How one corpus entry replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The divergence reproduced.
    Reproduced {
        /// First divergent cycle observed now.
        cycle: u64,
        /// Divergence kind label observed now.
        kind: String,
    },
    /// The lanes agreed over the full horizon — the recorded bug no
    /// longer reproduces.
    Clean,
    /// The lanes halted unanimously before the horizon.
    Halted {
        /// The halt rendered for the report.
        detail: String,
    },
}

/// One corpus entry's replay result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayResult {
    /// Entry name.
    pub name: String,
    /// Expected divergence (`cycle`, `kind`) from the metadata.
    pub expected: (u64, String),
    /// What happened now.
    pub outcome: ReplayOutcome,
    /// Per-lane statistics from the replay run, for lanes whose engines
    /// keep them.
    pub lane_stats: Vec<crate::state::LaneAccess>,
}

/// A corpus replay sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Per-entry results, in name order.
    pub results: Vec<ReplayResult>,
}

impl ReplayReport {
    /// Entries whose divergence reproduced.
    pub fn reproduced(&self) -> impl Iterator<Item = &ReplayResult> {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, ReplayOutcome::Reproduced { .. }))
    }

    /// `true` when no entry reproduced its divergence (every recorded bug
    /// is fixed) and nothing halted.
    pub fn clean(&self) -> bool {
        self.results
            .iter()
            .all(|r| matches!(r.outcome, ReplayOutcome::Clean))
    }
}

impl std::fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in &self.results {
            let status = match &r.outcome {
                ReplayOutcome::Reproduced { cycle, kind } => {
                    format!("REPRODUCED at cycle {cycle} ({kind})")
                }
                ReplayOutcome::Clean => "clean (bug no longer reproduces)".to_string(),
                ReplayOutcome::Halted { detail } => format!("halted: {detail}"),
            };
            writeln!(f, "  corpus/{:<16} {status}", r.name)?;
        }
        for totals in crate::runner::aggregate_lanes(self.results.iter().map(|r| &r.lane_stats[..]))
        {
            writeln!(
                f,
                "  replay lane {}: {} entries, {} cycles, {} accesses",
                totals.lane, totals.cases, totals.cycles, totals.accesses
            )?;
        }
        writeln!(
            f,
            "corpus replay: {} entries, {} reproduced",
            self.results.len(),
            self.reproduced().count(),
        )
    }
}

/// Replays corpus entries across the named lanes (each entry's own
/// recorded engine list when `engines` is `None`).
///
/// # Errors
///
/// Lane construction failures; reproduction is part of the report.
pub fn replay(
    registry: &rtl_core::EngineRegistry,
    entries: &[CorpusEntry],
    engines: Option<&[String]>,
) -> Result<ReplayReport, CampaignError> {
    let mut results = Vec::with_capacity(entries.len());
    for entry in entries {
        let lanes: Vec<String> = match engines {
            Some(list) => list.to_vec(),
            None => entry.engines.clone(),
        };
        let options = CosimOptions {
            compare_every: entry.compare_every.max(1),
            ..CosimOptions::default()
        };
        let outcome = rtl_cosim::run_scenario_names(registry, &lanes, &entry.scenario, &options)
            .map_err(CampaignError::from)?;
        let lane_stats = outcome
            .lane_stats()
            .iter()
            .map(|s| crate::state::LaneAccess {
                lane: s.lane.clone(),
                cycles: s.stats.cycles,
                accesses: s.stats.total_accesses(),
            })
            .collect();
        let outcome = match outcome {
            CosimOutcome::Divergence(report) => ReplayOutcome::Reproduced {
                cycle: u64::try_from(report.cycle).unwrap_or(0),
                kind: kind_label(&report.kind),
            },
            CosimOutcome::Agreement { stop, .. } => match stop.into_error() {
                None => ReplayOutcome::Clean,
                Some(e) => ReplayOutcome::Halted {
                    detail: e.to_string(),
                },
            },
        };
        results.push(ReplayResult {
            name: entry.name.clone(),
            expected: (entry.cycle, entry.kind.clone()),
            outcome,
            lane_stats,
        });
    }
    Ok(ReplayReport { results })
}

fn render_stimulus(words: &[Word]) -> String {
    let mut out = String::new();
    for w in words {
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

fn parse_stimulus(text: &str) -> Result<Vec<Word>, String> {
    text.split_ascii_whitespace()
        .map(|w| {
            w.parse::<Word>()
                .map_err(|_| format!("bad stimulus word {w:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyVmFactory;
    use crate::shrink::shrink_divergence;
    use rtl_cosim::GenOptions;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asim2-corpus-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fault_registry() -> rtl_core::EngineRegistry {
        let mut r = rtl_cosim::default_registry();
        r.register(Box::new(FaultyVmFactory::from_cycle(10)));
        r
    }

    fn engines() -> Vec<String> {
        vec!["interp".into(), "vm-fault".into()]
    }

    fn shrunk_fault_case(seed: u64) -> Shrunk {
        shrink_divergence(
            &fault_registry(),
            &engines(),
            seed,
            &GenOptions {
                size: 12,
                cycles: 32,
                ..GenOptions::default()
            },
            &CosimOptions::default(),
        )
        .unwrap()
        .expect("fault diverges")
    }

    #[test]
    fn save_load_replay_round_trip() {
        let dir = scratch("roundtrip");
        let shrunk = shrunk_fault_case(3);
        let saved = save(&dir, &shrunk, &engines(), 1).unwrap();
        assert_eq!(saved.name, "seed-3");
        for ext in ["asim", "stim", "ckpt", "json"] {
            assert!(dir.join(format!("seed-3.{ext}")).is_file(), "{ext} missing");
        }

        let loaded = load_all(&dir).unwrap();
        assert_eq!(loaded, vec![saved.clone()]);

        // Replaying with the faulty lane reproduces the divergence…
        let report = replay(&fault_registry(), &loaded, None).unwrap();
        assert_eq!(report.reproduced().count(), 1);
        assert!(!report.clean());
        match &report.results[0].outcome {
            ReplayOutcome::Reproduced { cycle, kind } => {
                assert_eq!(*cycle, saved.cycle);
                assert_eq!(*kind, saved.kind);
            }
            other => panic!("{other:?}"),
        }

        // …and replaying against the healthy VM comes back clean: the
        // archived scenario waits for a real regression.
        let healthy: Vec<String> = vec!["interp".into(), "vm".into()];
        let report = replay(&fault_registry(), &loaded, Some(&healthy)).unwrap();
        assert!(report.clean(), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_designs_are_archived_once() {
        let dir = scratch("dedup");
        let shrunk = shrunk_fault_case(7);
        let first = save(&dir, &shrunk, &engines(), 1).unwrap();

        // The same shrunk divergence arriving again (a later campaign
        // re-finding the bug, or a shard merge folding overlapping
        // corpora) returns the existing entry instead of re-archiving.
        let again = save(&dir, &shrunk, &engines(), 1).unwrap();
        assert_eq!(again, first);

        // A differently-*named* duplicate (same scenario under another
        // seed label) still dedups: the key is the scenario content.
        let mut renamed = shrunk.clone();
        renamed.seed = 999_999;
        let deduped = save(&dir, &renamed, &engines(), 1).unwrap();
        assert_eq!(deduped.name, first.name, "existing entry wins");
        assert!(!dir.join("seed-999999.json").exists(), "no duplicate files");
        assert_eq!(load_all(&dir).unwrap().len(), 1);

        // A genuinely different scenario is archived alongside.
        let other = shrunk_fault_case(8);
        assert_ne!(
            entry_fingerprint(&other.scenario),
            entry_fingerprint(&shrunk.scenario)
        );
        save(&dir, &other, &engines(), 1).unwrap();
        assert_eq!(load_all(&dir).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_entries_are_rejected() {
        let dir = scratch("tamper");
        let shrunk = shrunk_fault_case(4);
        save(&dir, &shrunk, &engines(), 1).unwrap();

        // Swap the specification for a different design: the stored
        // checkpoint's fingerprint no longer matches.
        let asim = dir.join("seed-4.asim");
        std::fs::write(&asim, "# other\nx .\nA x 2 1 0 .").unwrap();
        let err = load_all(&dir).unwrap_err();
        assert!(
            err.to_string().contains("fingerprint") || err.to_string().contains("checkpoint"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_corpus_directory_is_empty() {
        assert!(load_all(Path::new("/nonexistent/corpus"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn interrupted_write_leftovers_do_not_poison_the_corpus() {
        let dir = scratch("leftover");
        let shrunk = shrunk_fault_case(6);
        save(&dir, &shrunk, &engines(), 1).unwrap();
        // A kill between write and rename leaves the temp sibling behind.
        std::fs::write(dir.join(".tmp-999-seed-9.json"), "{").unwrap();
        let loaded = load_all(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].name, "seed-6");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stimulus_text_round_trips() {
        assert_eq!(parse_stimulus("1\n-7\n300\n").unwrap(), vec![1, -7, 300]);
        assert_eq!(parse_stimulus("").unwrap(), Vec::<Word>::new());
        assert!(parse_stimulus("1 nope").is_err());
        assert_eq!(render_stimulus(&[5, -2]), "5\n-2\n");
    }
}
