//! Campaign configuration: the determinism contract of a campaign.
//!
//! Everything that influences a case's *outcome* lives here and is hashed
//! into the campaign fingerprint — resuming with a different seed, case
//! count, engine list, generator tuning or comparison stride would
//! silently change results, so the state layer refuses it. Worker count is
//! deliberately *not* part of the fingerprint: per-case seeds make results
//! order-independent, so any parallelism must produce the identical
//! campaign.

use crate::json::Json;
use rtl_core::Fingerprint;
use rtl_cosim::{CosimOptions, FuzzOptions, GenOptions};

/// The persisted campaign configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Base seed; case `i` runs fuzz seed `seed + i` (wrapping).
    pub seed: u64,
    /// Number of fuzz cases.
    pub cases: u32,
    /// Engine lane names under comparison (any registry lane).
    pub engines: Vec<String>,
    /// Scenario generator tuning.
    pub generator: GenOptions,
    /// Lockstep comparison stride.
    pub compare_every: u64,
    /// Attach the `rtl-lint` cross-validation oracle to every case: a
    /// runtime observation contradicting a static claim (dead arm fires,
    /// undriven cell changes) is a divergence. Outcome-relevant, so it is
    /// fingerprinted — but only when set, keeping fingerprints of
    /// existing campaigns unchanged.
    pub lint_oracle: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0,
            cases: 100,
            engines: vec!["interp".into(), "vm".into()],
            generator: GenOptions::default(),
            compare_every: 1,
            lint_oracle: false,
        }
    }
}

impl CampaignConfig {
    /// The per-case [`FuzzOptions`] this configuration induces.
    pub fn fuzz_options(&self) -> FuzzOptions {
        FuzzOptions {
            seed: self.seed,
            cases: self.cases,
            engines: self.engines.clone(),
            generator: self.generator.clone(),
            cosim: CosimOptions {
                compare_every: self.compare_every.max(1),
                lint_oracle: self.lint_oracle,
                ..CosimOptions::default()
            },
        }
    }

    /// A stable fingerprint over every outcome-relevant field, using the
    /// same FNV-1a hasher as the session checkpoint format. Resume
    /// refuses a directory whose fingerprint disagrees.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str("asim2-campaign v1");
        fp.write_u64(self.seed);
        fp.write_u64(u64::from(self.cases));
        fp.write_u64(self.engines.len() as u64);
        for engine in &self.engines {
            fp.write_str(engine);
        }
        fp.write_u64(self.generator.size as u64);
        fp.write_u64(self.generator.cycles);
        fp.write_u64(u64::from(self.generator.io_every));
        fp.write_u64(self.compare_every);
        if self.lint_oracle {
            // Folded only when set so fingerprints of campaigns recorded
            // before the oracle existed stay valid for resume.
            fp.write_str("lint-oracle");
        }
        fp.finish()
    }

    /// Serializes the configuration.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::num(self.seed)),
            ("cases".into(), Json::num(self.cases)),
            (
                "engines".into(),
                Json::Arr(self.engines.iter().map(Json::str).collect()),
            ),
            ("size".into(), Json::num(self.generator.size)),
            ("cycles".into(), Json::num(self.generator.cycles)),
            ("io_every".into(), Json::num(self.generator.io_every)),
            ("compare_every".into(), Json::num(self.compare_every)),
            ("lint_oracle".into(), Json::Bool(self.lint_oracle)),
        ])
    }

    /// Deserializes a configuration.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<CampaignConfig, String> {
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| format!("missing field {name:?}"))
        };
        let num = |name: &str| {
            field(name)?
                .as_u64()
                .ok_or_else(|| format!("field {name:?} is not a number"))
        };
        let engines = field("engines")?
            .as_arr()
            .ok_or("field \"engines\" is not an array")?
            .iter()
            .map(|e| {
                e.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "engine names must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignConfig {
            seed: num("seed")?,
            cases: u32::try_from(num("cases")?).map_err(|_| "cases out of range")?,
            engines,
            generator: GenOptions {
                size: usize::try_from(num("size")?).map_err(|_| "size out of range")?,
                cycles: num("cycles")?,
                io_every: u32::try_from(num("io_every")?).map_err(|_| "io_every out of range")?,
            },
            compare_every: num("compare_every")?,
            // Absent in documents written before the oracle existed.
            lint_oracle: doc
                .get("lint_oracle")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_through_json() {
        let config = CampaignConfig {
            seed: u64::MAX,
            cases: 7,
            engines: vec!["interp".into(), "vm-noopt".into()],
            generator: GenOptions {
                size: 12,
                cycles: 48,
                io_every: 3,
            },
            compare_every: 16,
            lint_oracle: true,
        };
        let back = CampaignConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back, config);

        // Documents written before the oracle existed have no
        // `lint_oracle` key; they deserialize with it off.
        let legacy = CampaignConfig {
            lint_oracle: false,
            ..config.clone()
        };
        let mut doc = legacy.to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "lint_oracle");
        }
        assert_eq!(CampaignConfig::from_json(&doc).unwrap(), legacy);
    }

    #[test]
    fn fingerprint_tracks_every_outcome_field() {
        let base = CampaignConfig::default();
        let fp = base.fingerprint();
        assert_eq!(fp, CampaignConfig::default().fingerprint(), "stable");
        let variants = [
            CampaignConfig {
                seed: 1,
                ..base.clone()
            },
            CampaignConfig {
                cases: 99,
                ..base.clone()
            },
            CampaignConfig {
                engines: vec!["interp".into(), "vm-noopt".into()],
                ..base.clone()
            },
            CampaignConfig {
                generator: GenOptions {
                    size: 31,
                    ..base.generator.clone()
                },
                ..base.clone()
            },
            CampaignConfig {
                compare_every: 2,
                ..base.clone()
            },
            CampaignConfig {
                lint_oracle: true,
                ..base.clone()
            },
        ];
        for v in variants {
            assert_ne!(v.fingerprint(), fp, "{v:?}");
        }
    }

    #[test]
    fn missing_fields_are_named() {
        let err = CampaignConfig::from_json(&Json::Obj(vec![])).unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }
}
