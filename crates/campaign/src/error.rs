//! The campaign error type.

use rtl_cosim::ScenarioError;

/// Why a campaign operation failed outright. Engine *divergence* is never
/// an error — it is the signal the campaign exists to find, and lives in
/// reports.
#[derive(Debug)]
pub enum CampaignError {
    /// File-system failure under the campaign directory.
    Io(std::io::Error),
    /// On-disk state that cannot be parsed or fails validation.
    Corrupt(String),
    /// A configuration problem: fingerprint mismatch on resume, an
    /// already-initialized directory, an unknown engine name.
    Config(String),
    /// A lane could not be built or run (missing toolchain, subprocess
    /// failure outside the design's control).
    Lane(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "i/o error: {e}"),
            CampaignError::Corrupt(m) => write!(f, "corrupt campaign state: {m}"),
            CampaignError::Config(m) => f.write_str(m),
            CampaignError::Lane(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

impl From<ScenarioError> for CampaignError {
    fn from(e: ScenarioError) -> Self {
        match e {
            ScenarioError::Load(e) => CampaignError::Corrupt(e.to_string()),
            ScenarioError::Engine(m) => CampaignError::Lane(m),
        }
    }
}
