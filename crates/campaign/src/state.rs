//! The versioned on-disk campaign state.
//!
//! A campaign directory holds:
//!
//! ```text
//! campaign.json      — format line, config fingerprint, configuration
//! cases/case-N.json  — one record per completed case, written atomically
//! corpus/            — shrunk divergence-regression scenarios (see corpus)
//! bin-cache/         — compiled `rust`-lane binaries, keyed by source hash
//! ```
//!
//! Stop the process at any point and `resume` picks up exactly the
//! missing cases: a record file either exists completely (it is published
//! with a write-to-temp + rename) or not at all. The manifest carries the
//! [`CampaignConfig::fingerprint`] so a resume with a drifted
//! configuration is refused instead of silently producing different
//! results.

use crate::config::CampaignConfig;
use crate::error::CampaignError;
use crate::json::Json;
use std::io;
use std::path::{Path, PathBuf};

/// The manifest format line; bump on breaking layout changes.
pub const FORMAT: &str = "asim2-campaign v1";

/// How one case ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseStatus {
    /// All lanes agreed over the full horizon.
    Agreed,
    /// All lanes agreed about a runtime halt (generator invariant broken —
    /// a campaign failure, though not an engine divergence).
    Halted {
        /// The halt rendered for the report.
        detail: String,
    },
    /// Lanes disagreed.
    Diverged {
        /// First divergent cycle.
        cycle: u64,
        /// What diverged (a stable label like `output:x3`).
        kind: String,
        /// The shrunk corpus entry saved for this divergence, if shrinking
        /// succeeded.
        corpus: Option<String>,
    },
    /// A harness error (I/O, subprocess failure) — the case verified
    /// nothing.
    Error {
        /// The error rendered for the report.
        detail: String,
    },
}

impl CaseStatus {
    /// The stable status tag used on disk and in summaries.
    pub fn tag(&self) -> &'static str {
        match self {
            CaseStatus::Agreed => "agreed",
            CaseStatus::Halted { .. } => "halted",
            CaseStatus::Diverged { .. } => "diverged",
            CaseStatus::Error { .. } => "error",
        }
    }
}

/// One lane's headline statistics in a case record — the §1.4 counters
/// cosim used to drop ([`Engine::stats`](rtl_core::Engine::stats)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneAccess {
    /// Engine lane name.
    pub lane: String,
    /// Cycles the lane executed (0 in records written before the field
    /// existed).
    pub cycles: u64,
    /// Total memory accesses (reads + writes + inputs + outputs).
    pub accesses: u64,
}

/// One completed case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseRecord {
    /// Case index in `0..config.cases`.
    pub index: u32,
    /// The case's fuzz seed (`config.seed + index`, wrapping).
    pub seed: u64,
    /// Cycles verified in lockstep.
    pub cycles: u64,
    /// Per-lane simulation statistics, for lanes whose engines keep
    /// them. (For a case resumed mid-run via `--case-checkpoint`, only
    /// the post-resume portion is counted.)
    pub lane_stats: Vec<LaneAccess>,
    /// How the case ended.
    pub status: CaseStatus,
}

impl CaseRecord {
    /// Serializes the record.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("index".into(), Json::num(self.index)),
            ("seed".into(), Json::num(self.seed)),
            ("cycles".into(), Json::num(self.cycles)),
            (
                "lane_stats".into(),
                Json::Arr(
                    self.lane_stats
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("lane".into(), Json::str(&s.lane)),
                                ("cycles".into(), Json::num(s.cycles)),
                                ("accesses".into(), Json::num(s.accesses)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("status".into(), Json::str(self.status.tag())),
        ];
        match &self.status {
            CaseStatus::Agreed => {}
            CaseStatus::Halted { detail } | CaseStatus::Error { detail } => {
                pairs.push(("detail".into(), Json::str(detail)));
            }
            CaseStatus::Diverged {
                cycle,
                kind,
                corpus,
            } => {
                pairs.push(("divergence_cycle".into(), Json::num(cycle)));
                pairs.push(("divergence_kind".into(), Json::str(kind)));
                pairs.push((
                    "corpus".into(),
                    match corpus {
                        Some(name) => Json::str(name),
                        None => Json::Null,
                    },
                ));
            }
        }
        Json::Obj(pairs)
    }

    /// Deserializes a record.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<CaseRecord, String> {
        let num = |name: &str| {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field {name:?}"))
        };
        let text = |name: &str| {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {name:?}"))
        };
        let status = match text("status")?.as_str() {
            "agreed" => CaseStatus::Agreed,
            "halted" => CaseStatus::Halted {
                detail: text("detail")?,
            },
            "error" => CaseStatus::Error {
                detail: text("detail")?,
            },
            "diverged" => CaseStatus::Diverged {
                cycle: num("divergence_cycle")?,
                kind: text("divergence_kind")?,
                corpus: match doc.get("corpus") {
                    Some(Json::Str(name)) => Some(name.clone()),
                    _ => None,
                },
            },
            other => return Err(format!("unknown status {other:?}")),
        };
        // Absent or malformed stats read as empty: records written before
        // the field existed stay loadable.
        let lane_stats = doc
            .get("lane_stats")
            .and_then(Json::as_arr)
            .map(|entries| {
                entries
                    .iter()
                    .filter_map(|e| {
                        Some(LaneAccess {
                            lane: e.get("lane")?.as_str()?.to_string(),
                            // Absent in pre-PR6 records: read as 0.
                            cycles: e.get("cycles").and_then(Json::as_u64).unwrap_or(0),
                            accesses: e.get("accesses")?.as_u64()?,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(CaseRecord {
            index: u32::try_from(num("index")?).map_err(|_| "index out of range")?,
            seed: num("seed")?,
            cycles: num("cycles")?,
            lane_stats,
            status,
        })
    }
}

/// The paths of a campaign directory.
#[derive(Debug, Clone)]
pub struct CampaignDir {
    root: PathBuf,
}

impl CampaignDir {
    /// Wraps a campaign root path (no I/O).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        CampaignDir { root: root.into() }
    }

    /// The root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `campaign.json`.
    pub fn manifest(&self) -> PathBuf {
        self.root.join("campaign.json")
    }

    /// The per-case record directory.
    pub fn cases(&self) -> PathBuf {
        self.root.join("cases")
    }

    /// The divergence-regression corpus directory.
    pub fn corpus(&self) -> PathBuf {
        self.root.join("corpus")
    }

    /// The compiled-binary cache directory for the `rust` stream lane.
    pub fn bin_cache(&self) -> PathBuf {
        self.root.join("bin-cache")
    }

    /// One case record's path.
    pub fn case_path(&self, index: u32) -> PathBuf {
        self.cases().join(format!("case-{index:06}.json"))
    }

    /// One case's execution-profile sidecar path (present only for cases
    /// run with [`RunOptions::profile`](crate::RunOptions) on; published
    /// atomically *before* the case record).
    pub fn profile_path(&self, index: u32) -> PathBuf {
        self.cases().join(format!("case-{index:06}.profile"))
    }

    /// One case's flight-recorder sidecar path (present only for
    /// non-agreed cases run with [`RunOptions::flight`](crate::RunOptions)
    /// on; published atomically *before* the case record, so worker
    /// counts and kill+resume cannot change a published dump).
    pub fn flight_path(&self, index: u32) -> PathBuf {
        self.cases().join(format!("case-{index:06}.flight.jsonl"))
    }

    /// Initializes a fresh campaign directory and writes the manifest.
    /// The root may already exist (e.g. holding a pre-seeded `corpus/`),
    /// but an existing manifest means a campaign already lives here.
    ///
    /// # Errors
    ///
    /// An existing manifest, or file-system failure.
    pub fn init(&self, config: &CampaignConfig) -> Result<(), CampaignError> {
        if self.manifest().exists() {
            return Err(CampaignError::Config(format!(
                "{} already holds a campaign (use resume)",
                self.root.display()
            )));
        }
        std::fs::create_dir_all(&self.root)?;
        std::fs::create_dir_all(self.cases())?;
        std::fs::create_dir_all(self.corpus())?;
        let doc = Json::Obj(vec![
            ("format".into(), Json::str(FORMAT)),
            (
                "fingerprint".into(),
                Json::str(format!("{:016x}", config.fingerprint())),
            ),
            ("config".into(), config.to_json()),
        ]);
        write_atomic(&self.manifest(), doc.render().as_bytes())?;
        Ok(())
    }

    /// Loads and validates the manifest: format line, config, and the
    /// fingerprint recomputed from the config.
    ///
    /// # Errors
    ///
    /// Missing/corrupt manifest, version mismatch, or a fingerprint that
    /// does not match its own configuration (a hand-edited manifest).
    pub fn load(&self) -> Result<CampaignConfig, CampaignError> {
        let path = self.manifest();
        let text = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                CampaignError::Config(format!(
                    "{} holds no campaign (missing campaign.json)",
                    self.root.display()
                ))
            } else {
                CampaignError::Io(e)
            }
        })?;
        let doc = Json::parse(&text)
            .map_err(|e| CampaignError::Corrupt(format!("{}: {e}", path.display())))?;
        match doc.get("format").and_then(Json::as_str) {
            Some(FORMAT) => {}
            Some(other) => {
                return Err(CampaignError::Corrupt(format!(
                    "unsupported campaign format {other:?} (expected {FORMAT:?})"
                )))
            }
            None => {
                return Err(CampaignError::Corrupt(
                    "campaign.json has no format line".into(),
                ))
            }
        }
        let config = doc
            .get("config")
            .ok_or_else(|| CampaignError::Corrupt("campaign.json has no config".into()))
            .and_then(|c| CampaignConfig::from_json(c).map_err(CampaignError::Corrupt))?;
        let stored = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| CampaignError::Corrupt("campaign.json has no fingerprint".into()))?;
        if stored != config.fingerprint() {
            return Err(CampaignError::Config(
                "campaign fingerprint does not match its configuration \
                 (manifest edited?)"
                    .into(),
            ));
        }
        Ok(config)
    }

    /// Publishes one case record atomically (temp file + rename), so an
    /// interrupt never leaves a half-written record behind.
    ///
    /// # Errors
    ///
    /// File-system failure.
    pub fn write_case(&self, record: &CaseRecord) -> Result<(), CampaignError> {
        write_atomic(
            &self.case_path(record.index),
            record.to_json().render().as_bytes(),
        )?;
        Ok(())
    }

    /// Loads every existing case record, indexed by case number; `None`
    /// where the case has not completed.
    ///
    /// # Errors
    ///
    /// A corrupt record, or file-system failure.
    pub fn load_cases(&self, cases: u32) -> Result<Vec<Option<CaseRecord>>, CampaignError> {
        let mut records = vec![None; cases as usize];
        for (index, slot) in records.iter_mut().enumerate() {
            let path = self.case_path(index as u32);
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(CampaignError::Io(e)),
            };
            let record = Json::parse(&text)
                .and_then(|doc| CaseRecord::from_json(&doc))
                .map_err(|e| CampaignError::Corrupt(format!("{}: {e}", path.display())))?;
            if record.index != index as u32 {
                return Err(CampaignError::Corrupt(format!(
                    "{} records case {} (index/file mismatch)",
                    path.display(),
                    record.index
                )));
            }
            *slot = Some(record);
        }
        Ok(records)
    }
}

/// Writes a file via a temp sibling + rename, so readers (and interrupted
/// writers) never observe partial content. Public for the layers built on
/// the campaign state (`rtl-dist` publishes merged records the same way).
///
/// # Errors
///
/// File-system failure; the temp sibling is cleaned up on a failed
/// rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("campaign")
    ));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "asim2-campaign-state-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn init_load_and_refuse_double_init() {
        let root = scratch("init");
        let dir = CampaignDir::new(&root);
        let config = CampaignConfig::default();
        dir.init(&config).unwrap();
        assert_eq!(dir.load().unwrap(), config);
        let err = dir.init(&config).unwrap_err();
        assert!(err.to_string().contains("resume"), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn case_records_round_trip_and_resume_sees_gaps() {
        let root = scratch("cases");
        let dir = CampaignDir::new(&root);
        dir.init(&CampaignConfig::default()).unwrap();
        let records = [
            CaseRecord {
                index: 0,
                seed: 9,
                cycles: 64,
                lane_stats: vec![
                    LaneAccess {
                        lane: "interp".into(),
                        cycles: 64,
                        accesses: 128,
                    },
                    LaneAccess {
                        lane: "vm".into(),
                        cycles: 64,
                        accesses: 128,
                    },
                ],
                status: CaseStatus::Agreed,
            },
            CaseRecord {
                index: 2,
                seed: 11,
                cycles: 17,
                lane_stats: Vec::new(),
                status: CaseStatus::Diverged {
                    cycle: 17,
                    kind: "output:x3".into(),
                    corpus: Some("seed-11".into()),
                },
            },
            CaseRecord {
                index: 3,
                seed: 12,
                cycles: 5,
                lane_stats: Vec::new(),
                status: CaseStatus::Halted {
                    detail: "input exhausted at cycle 5".into(),
                },
            },
        ];
        for r in &records {
            dir.write_case(r).unwrap();
        }
        let loaded = dir.load_cases(5).unwrap();
        assert_eq!(loaded[0].as_ref(), Some(&records[0]));
        assert!(loaded[1].is_none(), "gap preserved");
        assert_eq!(loaded[2].as_ref(), Some(&records[1]));
        assert_eq!(loaded[3].as_ref(), Some(&records[2]));
        assert!(loaded[4].is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_manifests_are_reported() {
        let root = scratch("corrupt");
        let dir = CampaignDir::new(&root);
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(dir.manifest(), "not json").unwrap();
        assert!(matches!(dir.load(), Err(CampaignError::Corrupt(_))));

        // A manifest whose fingerprint disagrees with its config.
        let doc = Json::Obj(vec![
            ("format".into(), Json::str(FORMAT)),
            ("fingerprint".into(), Json::str("0000000000000000")),
            ("config".into(), CampaignConfig::default().to_json()),
        ]);
        std::fs::write(dir.manifest(), doc.render()).unwrap();
        assert!(matches!(dir.load(), Err(CampaignError::Config(_))));
        let _ = std::fs::remove_dir_all(&root);
    }
}
