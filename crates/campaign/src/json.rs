//! A minimal JSON document model for the campaign's on-disk state.
//!
//! The build environment vendors no serde, and the campaign formats are
//! small, flat documents — so this module hand-rolls exactly the subset
//! the campaign needs: objects, arrays, strings, integers and booleans.
//! Numbers are kept as their literal text ([`Json::Num`]), so `u64` seeds
//! round-trip losslessly (an `f64` model would corrupt seeds above 2^53).

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text for lossless round-trips.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value from anything displayable as a numeric literal.
    pub fn num(value: impl std::fmt::Display) -> Json {
        Json::Num(value.to_string())
    }

    /// A string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline — stable output, so identical state diffs as identical
    /// text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// A position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("empty number at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        Ok(Json::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("seed".into(), Json::num(u64::MAX)),
            ("name".into(), Json::str("fuzz/seed-7 \"quoted\"\n")),
            (
                "engines".into(),
                Json::Arr(vec![Json::str("interp"), Json::str("vm")]),
            ),
            ("clean".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(
            back.get("name").unwrap().as_str(),
            Some("fuzz/seed-7 \"quoted\"\n")
        );
        assert_eq!(back.get("engines").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(back.get("clean").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let doc = Json::parse(" { \"a\" : [ 1 , -2 ] , \"b\" : \"x\\u0041\\ty\" } ").unwrap();
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[1].as_i64(),
            Some(-2)
        );
        assert_eq!(doc.get("b").unwrap().as_str(), Some("xA\ty"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"open"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }
}
