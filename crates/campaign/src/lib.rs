//! # rtl-campaign — parallel, resumable verification campaigns
//!
//! `rtl-cosim` proves engines agree on *one* scenario; this crate turns
//! that primitive into an industrial process. A **campaign** runs
//! thousands of fuzz cases across a work-stealing worker pool (one
//! [`EngineRegistry`](rtl_core::EngineRegistry) per worker, one derived
//! seed per case, so results are order-independent and bit-identical at
//! any worker count), records every case in a versioned on-disk state
//! that survives kills ([`state`]), and turns every divergence it finds
//! into a permanent asset: the case is [shrunk](shrink) to a minimal
//! reproduction and archived in a [`corpus`] of regression
//! scenarios that later campaigns and CI replay first.
//!
//! * [`config`] — the determinism contract: everything outcome-relevant,
//!   fingerprinted with the session-checkpoint hasher so a drifted resume
//!   is refused.
//! * [`state`] — `campaign.json` + atomically-published per-case records;
//!   stop the process anywhere, [`resume`] runs exactly the gaps.
//! * [`shrink`] — binary-search minimization over generator size, cycle
//!   horizon and stimulus length, re-running lockstep per candidate.
//! * [`corpus`] — `.asim` + stimulus + a fingerprinted session checkpoint
//!   per entry; [`replay_corpus`] is the CI gate.
//! * [`fault`] — the `vm-fault` lane: deliberate trace corruption that
//!   proves the find→shrink→archive→replay pipeline end to end.
//! * [`runner`] — the pool itself, plus [`CampaignReport`].
//!
//! ```
//! use rtl_campaign::{run, CampaignConfig, CampaignDir, NoProgress, RunOptions};
//! use rtl_cosim::GenOptions;
//!
//! let root = std::env::temp_dir().join(format!("campaign-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&root);
//! let dir = CampaignDir::new(&root);
//! let config = CampaignConfig {
//!     cases: 4,
//!     generator: GenOptions { size: 8, cycles: 16, ..GenOptions::default() },
//!     ..CampaignConfig::default()
//! };
//! let report = run(
//!     &dir,
//!     &config,
//!     &RunOptions { workers: 2, ..RunOptions::default() },
//!     &mut NoProgress,
//! ).unwrap();
//! assert!(report.clean(), "{report}");
//! # let _ = std::fs::remove_dir_all(&root);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod corpus;
pub mod error;
pub mod fault;
pub mod json;
pub mod runner;
pub mod shrink;
pub mod state;

pub use config::CampaignConfig;
pub use corpus::{CorpusEntry, ReplayOutcome, ReplayReport, ReplayResult};
pub use error::CampaignError;
pub use fault::{FaultyVmFactory, DEFAULT_FAULT_CYCLE};
pub use runner::{
    aggregate_lanes, campaign_registry, fold_profiles, replay_corpus, resume, run, CampaignReport,
    LaneTotals, NoProgress, Progress, RunOptions, CASE_CHECKPOINT_EVERY,
};
pub use shrink::{shrink_divergence, Shrunk};
pub use state::{CampaignDir, CaseRecord, CaseStatus, LaneAccess};
