//! Re-export of the fault-injection lane, which moved to
//! [`rtl_cosim::fault`] so every cosim consumer (the CLI included) can
//! validate its comparison pipeline — campaigns keep using it through
//! this path.

pub use rtl_cosim::fault::{FaultyVmFactory, DEFAULT_FAULT_CYCLE};
