//! Deliberate fault injection: a broken engine lane for validating the
//! campaign pipeline end to end.
//!
//! A verification subsystem that has never seen a bug is itself
//! unverified. The `vm-fault` lane wraps the production bytecode VM and
//! corrupts its *trace bytes* (never its architectural state) from a
//! trigger cycle on, so a campaign comparing `interp,vm-fault` reliably
//! finds, shrinks and archives a divergence — exercising the exact path a
//! real engine bug would take, while snapshot/rewind bisection still works
//! (state is untouched, so replays reproduce byte-for-byte).

use rtl_core::{
    CompId, Design, Engine, EngineFactory, EngineLane, EngineOptions, InputSource, SimError,
    SimState, SimStats, Word,
};
use std::io::Write;

/// The default trigger cycle of the registered `vm-fault` lane.
pub const DEFAULT_FAULT_CYCLE: u64 = 40;

/// Builds the `vm-fault` lane: the full-optimization VM with trace
/// corruption from a trigger cycle on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyVmFactory {
    from_cycle: u64,
}

impl Default for FaultyVmFactory {
    fn default() -> Self {
        FaultyVmFactory {
            from_cycle: DEFAULT_FAULT_CYCLE,
        }
    }
}

impl FaultyVmFactory {
    /// A factory whose lanes corrupt trace output from `cycle` on.
    pub fn from_cycle(cycle: u64) -> Self {
        FaultyVmFactory { from_cycle: cycle }
    }
}

impl EngineFactory for FaultyVmFactory {
    fn name(&self) -> &str {
        "vm-fault"
    }

    fn description(&self) -> &str {
        "deliberately faulty VM (trace corruption past a trigger cycle) for campaign self-tests"
    }

    fn build<'d>(
        &self,
        design: &'d Design,
        options: &EngineOptions,
    ) -> Result<EngineLane<'d>, String> {
        let EngineLane::Stepped(inner) = rtl_compile::VmFactory::full().build(design, options)?
        else {
            unreachable!("the VM factory builds stepped lanes");
        };
        Ok(EngineLane::Stepped(Box::new(FaultInjector {
            inner,
            from_cycle: Word::try_from(self.from_cycle).unwrap_or(Word::MAX),
        })))
    }
}

/// Wraps any engine, corrupting its trace bytes (`=` becomes `#`) once
/// the cycle counter reaches `from_cycle`.
struct FaultInjector<'d> {
    inner: Box<dyn Engine + 'd>,
    from_cycle: Word,
}

impl Engine for FaultInjector<'_> {
    fn design(&self) -> &Design {
        self.inner.design()
    }

    fn state(&self) -> &SimState {
        self.inner.state()
    }

    fn restore(&mut self, snapshot: &SimState) {
        self.inner.restore(snapshot);
    }

    fn observes_output(&self, id: CompId) -> bool {
        self.inner.observes_output(id)
    }

    fn stats(&self) -> Option<&SimStats> {
        self.inner.stats()
    }

    fn step(&mut self, out: &mut dyn Write, input: &mut dyn InputSource) -> Result<(), SimError> {
        if self.inner.state().cycle() >= self.from_cycle {
            let mut corrupt = Corruptor { out };
            self.inner.step(&mut corrupt, input)
        } else {
            self.inner.step(out, input)
        }
    }
}

struct Corruptor<'a> {
    out: &'a mut dyn Write,
}

impl Write for Corruptor<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mangled: Vec<u8> = buf
            .iter()
            .map(|&b| if b == b'=' { b'#' } else { b })
            .collect();
        self.out.write_all(&mangled)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_cosim::{CosimOptions, CosimOutcome, DivergenceKind, Lockstep};

    #[test]
    fn fault_diverges_exactly_at_its_trigger() {
        let design =
            Design::from_source("# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .")
                .unwrap();
        let mut registry = rtl_cosim::default_registry();
        registry.register(Box::new(FaultyVmFactory::from_cycle(7)));
        let build = |name: &str| {
            let EngineLane::Stepped(engine) = registry
                .build(name, &design, &EngineOptions::default())
                .unwrap()
            else {
                panic!("stepped");
            };
            engine
        };
        let mut lockstep = Lockstep::new(&design, CosimOptions::default());
        lockstep.add_lane("interp", build("interp"));
        lockstep.add_lane("vm-fault", build("vm-fault"));
        let CosimOutcome::Divergence(report) = lockstep.run(20) else {
            panic!("fault must diverge");
        };
        assert_eq!(report.cycle, 7);
        assert_eq!(report.kind, DivergenceKind::Trace);
    }

    #[test]
    fn fault_agrees_below_its_trigger() {
        let design =
            Design::from_source("# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .")
                .unwrap();
        let mut registry = rtl_cosim::default_registry();
        registry.register(Box::new(FaultyVmFactory::from_cycle(50)));
        // Lockstep entirely below the trigger: no divergence.
        let EngineLane::Stepped(a) = registry
            .build("interp", &design, &EngineOptions::default())
            .unwrap()
        else {
            panic!()
        };
        let EngineLane::Stepped(b) = registry
            .build("vm-fault", &design, &EngineOptions::default())
            .unwrap()
        else {
            panic!()
        };
        let mut lockstep = Lockstep::new(&design, CosimOptions::default());
        lockstep.add_lane("interp", a);
        lockstep.add_lane("vm-fault", b);
        assert!(lockstep.run(20).agreed());
    }
}
