//! Campaign acceptance tests: determinism across worker counts,
//! interrupt + resume equivalence, and the injected-bug pipeline
//! (find → shrink → archive → replay).

use rtl_campaign::{
    replay_corpus, resume, run, CampaignConfig, CampaignDir, CampaignError, CaseStatus, NoProgress,
    ReplayOutcome, RunOptions,
};
use rtl_cosim::GenOptions;
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asim2-campaign-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_config(cases: u32) -> CampaignConfig {
    CampaignConfig {
        seed: 1,
        cases,
        engines: vec!["interp".into(), "vm".into()],
        generator: GenOptions {
            size: 10,
            cycles: 24,
            ..GenOptions::default()
        },
        compare_every: 1,
        lint_oracle: false,
    }
}

/// A configuration comparing the interpreter against the deliberately
/// faulty VM: every case whose horizon crosses the trigger cycle (40)
/// diverges.
fn faulty_config(cases: u32) -> CampaignConfig {
    CampaignConfig {
        engines: vec!["interp".into(), "vm-fault".into()],
        generator: GenOptions {
            size: 10,
            cycles: 48,
            ..GenOptions::default()
        },
        ..quick_config(cases)
    }
}

fn opts(workers: usize) -> RunOptions {
    RunOptions {
        workers,
        ..RunOptions::default()
    }
}

#[test]
fn identical_summary_across_runs_and_worker_counts() {
    let mut displays = Vec::new();
    for (label, workers) in [("a", 1), ("b", 4), ("c", 4)] {
        let root = scratch(&format!("det-{label}"));
        let report = run(
            &CampaignDir::new(&root),
            &quick_config(24),
            &opts(workers),
            &mut NoProgress,
        )
        .unwrap();
        assert!(report.complete());
        assert!(report.clean(), "{report}");
        displays.push((report.to_string(), report.records));
        let _ = std::fs::remove_dir_all(&root);
    }
    let (first_text, first_records) = &displays[0];
    for (text, records) in &displays[1..] {
        assert_eq!(text, first_text, "summary must not depend on workers");
        assert_eq!(records, first_records, "case outcomes must be identical");
    }
}

#[test]
fn interrupted_campaign_resumes_to_the_uninterrupted_result() {
    // Uninterrupted reference.
    let ref_root = scratch("resume-ref");
    let reference = run(
        &CampaignDir::new(&ref_root),
        &faulty_config(12),
        &opts(2),
        &mut NoProgress,
    )
    .unwrap();
    assert!(reference.diverged() > 0, "the fault must fire: {reference}");

    // Interrupted run: stop after 5 cases, then resume the rest.
    let root = scratch("resume-cut");
    let dir = CampaignDir::new(&root);
    let partial = run(
        &dir,
        &faulty_config(12),
        &RunOptions {
            workers: 3,
            limit: Some(5),
            ..RunOptions::default()
        },
        &mut NoProgress,
    )
    .unwrap();
    assert_eq!(partial.completed(), 5);
    assert!(!partial.complete());
    assert!(
        partial.to_string().contains("resume to continue"),
        "{partial}"
    );

    let resumed = resume(&dir, &opts(4), &mut NoProgress).unwrap();
    assert!(resumed.complete());
    assert_eq!(resumed.records, reference.records);
    assert_eq!(resumed.to_string(), reference.to_string());

    let _ = std::fs::remove_dir_all(&ref_root);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn injected_bug_is_found_shrunk_archived_and_reproduced() {
    let root = scratch("bug");
    let dir = CampaignDir::new(&root);
    let report = run(&dir, &faulty_config(6), &opts(2), &mut NoProgress).unwrap();
    assert!(report.diverged() > 0, "{report}");
    assert!(!report.clean());
    assert!(
        !report.new_corpus.is_empty(),
        "divergences must be archived"
    );

    // Every diverged case points at its corpus entry.
    for record in report.records.iter().flatten() {
        if let CaseStatus::Diverged { corpus, cycle, .. } = &record.status {
            assert_eq!(
                corpus.as_deref(),
                Some(format!("seed-{}", record.seed).as_str())
            );
            assert_eq!(*cycle, 40, "the fault triggers at cycle 40");
        }
    }

    // The archived minimal scenarios reproduce the divergence on replay…
    let replayed = replay_corpus(&dir, None).unwrap();
    assert_eq!(
        replayed.reproduced().count(),
        report.new_corpus.len(),
        "{replayed}"
    );
    for result in &replayed.results {
        match &result.outcome {
            ReplayOutcome::Reproduced { cycle, kind } => {
                assert_eq!(
                    (*cycle, kind.as_str()),
                    (result.expected.0, result.expected.1.as_str())
                );
            }
            other => panic!("{}: {other:?}", result.name),
        }
    }

    // …and come back clean once the bug is "fixed" (healthy vm lane).
    let healthy: Vec<String> = vec!["interp".into(), "vm".into()];
    let fixed = replay_corpus(&dir, Some(&healthy)).unwrap();
    assert!(fixed.clean(), "{fixed}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn preseeded_corpus_replays_before_fuzzing() {
    // Campaign A (vs the faulty VM) builds a corpus; campaign B starts
    // from a copy of it and replays it first.
    let root_a = scratch("seed-a");
    let dir_a = CampaignDir::new(&root_a);
    run(&dir_a, &faulty_config(4), &opts(2), &mut NoProgress).unwrap();

    let root_b = scratch("seed-b");
    let dir_b = CampaignDir::new(&root_b);
    std::fs::create_dir_all(dir_b.corpus()).unwrap();
    for dirent in std::fs::read_dir(dir_a.corpus()).unwrap() {
        let path = dirent.unwrap().path();
        std::fs::copy(&path, dir_b.corpus().join(path.file_name().unwrap())).unwrap();
    }

    // Campaign B compares the healthy engines: the old divergences no
    // longer reproduce, the fresh fuzz cases agree.
    let report = run(&dir_b, &quick_config(4), &opts(2), &mut NoProgress).unwrap();
    let replay = report.replay.as_ref().expect("pre-seeded corpus replayed");
    assert!(!replay.results.is_empty());
    assert!(replay.clean(), "{replay}");
    assert!(report.clean(), "{report}");

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}

#[test]
fn resume_refuses_a_drifted_configuration() {
    let root = scratch("drift");
    let dir = CampaignDir::new(&root);
    run(
        &dir,
        &quick_config(3),
        &RunOptions {
            workers: 1,
            limit: Some(1),
            ..RunOptions::default()
        },
        &mut NoProgress,
    )
    .unwrap();

    // Hand-edit the manifest to a different seed: the stored fingerprint
    // no longer matches the config, and resume refuses to continue.
    let manifest = std::fs::read_to_string(dir.manifest()).unwrap();
    let edited = manifest.replace("\"seed\": 1", "\"seed\": 2");
    assert_ne!(edited, manifest);
    std::fs::write(dir.manifest(), edited).unwrap();
    let err = resume(&dir, &opts(1), &mut NoProgress).unwrap_err();
    assert!(
        matches!(err, CampaignError::Config(_)),
        "expected config refusal, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn run_refuses_unknown_engines_and_existing_campaigns() {
    let root = scratch("refuse");
    let dir = CampaignDir::new(&root);
    let bad = CampaignConfig {
        engines: vec!["interp".into(), "warp".into()],
        ..quick_config(2)
    };
    let err = run(&dir, &bad, &opts(1), &mut NoProgress).unwrap_err();
    assert!(err.to_string().contains("unknown engine"), "{err}");

    run(&dir, &quick_config(2), &opts(1), &mut NoProgress).unwrap();
    let err = run(&dir, &quick_config(2), &opts(1), &mut NoProgress).unwrap_err();
    assert!(err.to_string().contains("resume"), "{err}");
    let _ = std::fs::remove_dir_all(&root);
}
