//! # rtl-bench — benchmark harnesses for the thesis's evaluation
//!
//! One bench target per table/figure (see `DESIGN.md` §3):
//!
//! * `benches/fig5_1.rs` — ASIM vs ASIM II simulation time on the sieve,
//! * `benches/figs4.rs` — code-generation throughput (the "Generate code"
//!   preparation row),
//! * `benches/ablation.rs` — A1/A2: §4.4 inlining and §5.4 latch elision,
//! * `benches/scaling.rs` — A3: component-count sweep,
//! * `benches/levels.rs` — A4: ISP level vs RTL level,
//! * `src/bin/fig5_1_table.rs` — the full Figure 5.1 table including the
//!   `rustc` pipeline, printed next to the paper's numbers,
//! * `src/bin/ablation_table.rs` — one-shot text tables for the ablations.

#![forbid(unsafe_code)]

use rtl_core::{Design, Engine, Session, SimError, Until, Word};
use rtl_machines::stack::{self, SieveWorkload};

/// The standard Figure 5.1 workload: the sieve at size 20 (a cycle count
/// in the same few-thousand range as the thesis's 5545).
pub fn sieve() -> (SieveWorkload, Design) {
    sieve_sized(20)
}

/// A sieve workload of arbitrary size with its elaborated RTL design.
pub fn sieve_sized(size: Word) -> (SieveWorkload, Design) {
    let w = stack::sieve_workload(size);
    let spec = stack::rtl::spec(&w.program, Some(w.cycles));
    let design = Design::elaborate(&spec).expect("sieve spec elaborates");
    (w, design)
}

/// Runs an engine over the spec's cycle count with output discarded (a
/// null-sink [`Session`]), panicking on simulation errors (benchmarks
/// must not fail silently).
pub fn run_to_sink<E: Engine>(engine: &mut E) {
    if let Err(e) = Session::over(engine).build().run(Until::Spec).into_result() {
        panic!("benchmark workload failed: {e}");
    }
}

/// Runs an engine for exactly `cycles` iterations with output discarded.
///
/// # Errors
///
/// The first failing cycle's error.
pub fn run_cycles_to_sink<E: Engine>(engine: &mut E, cycles: u64) -> Result<(), SimError> {
    Session::over(engine)
        .build()
        .run(Until::Cycles(cycles))
        .into_result()
        .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_compile::Vm;
    use rtl_interp::Interpreter;

    #[test]
    fn harness_workload_runs_on_both_engines() {
        let (w, design) = sieve_sized(5);
        let mut interp = Interpreter::new(&design);
        run_to_sink(&mut interp);
        let mut vm = Vm::new(&design);
        run_to_sink(&mut vm);
        assert_eq!(w.primes, vec![3, 5, 7, 11]);
    }
}
