//! One-shot text tables for the ablation and scaling experiments
//! (A1–A4 in `DESIGN.md`). Quick to run; Criterion versions with proper
//! statistics live in `benches/`.
//!
//! Run with: `cargo run --release -p rtl-bench --bin ablation_table`

#![forbid(unsafe_code)]

use rtl_bench::{run_cycles_to_sink, run_to_sink, sieve};
use rtl_compile::{lower, stats, OptOptions, Vm};
use rtl_core::Design;
use rtl_interp::{InterpOptions, Interpreter, LookupMode};
use rtl_machines::stack::{Iss, Stop};
use rtl_machines::synth::chain;
use std::time::{Duration, Instant};

fn best_of_3(mut f: impl FnMut()) -> Duration {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("three trials")
}

fn main() {
    let (w, design) = sieve();
    println!(
        "A1/A2 — optimization ablation (sieve, {} cycles, compiled VM)",
        w.cycles + 1
    );
    println!(
        "{:<20} {:>12} {:>8} {:>9} {:>8}",
        "variant", "time (s)", "nodes", "dologics", "elided"
    );
    let full = OptOptions::full();
    let variants: [(&str, OptOptions); 6] = [
        ("full", full),
        (
            "no-inline-alu",
            OptOptions {
                inline_const_alu: false,
                ..full
            },
        ),
        (
            "no-inline-memop",
            OptOptions {
                inline_const_memop: false,
                ..full
            },
        ),
        (
            "no-fold",
            OptOptions {
                fold_constants: false,
                ..full
            },
        ),
        (
            "no-latch-elision",
            OptOptions {
                elide_dead_latches: false,
                ..full
            },
        ),
        ("none", OptOptions::none()),
    ];
    for (name, opts) in variants {
        let s = stats(&lower(&design, opts));
        let t = best_of_3(|| {
            let mut vm = Vm::with_options(&design, opts, true);
            run_to_sink(&mut vm);
        });
        println!(
            "{:<20} {:>12.6} {:>8} {:>9} {:>8}",
            name,
            t.as_secs_f64(),
            s.nodes,
            s.generic_alus,
            s.elided_latches
        );
    }

    println!();
    println!("A3 — component-count scaling (synthetic chains, 500 cycles)");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>8}",
        "components", "symtab (s)", "interp (s)", "vm (s)", "ratio"
    );
    for n in [8usize, 32, 128, 512] {
        let d = Design::elaborate(&chain(n)).expect("chain");
        let ts = best_of_3(|| {
            let mut sim = Interpreter::with_options(
                &d,
                InterpOptions {
                    trace: false,
                    lookup: LookupMode::SymbolTable,
                },
            );
            run_cycles_to_sink(&mut sim, 500).expect("runs");
        });
        let ti = best_of_3(|| {
            let mut sim = Interpreter::with_options(&d, InterpOptions::quiet());
            run_cycles_to_sink(&mut sim, 500).expect("runs");
        });
        let tv = best_of_3(|| {
            let mut sim = Vm::with_options(&d, OptOptions::full(), false);
            run_cycles_to_sink(&mut sim, 500).expect("runs");
        });
        println!(
            "{:<10} {:>14.6} {:>14.6} {:>14.6} {:>8.1}",
            n + 2,
            ts.as_secs_f64(),
            ti.as_secs_f64(),
            tv.as_secs_f64(),
            ts.as_secs_f64() / tv.as_secs_f64().max(1e-12)
        );
    }

    println!();
    println!("A4 — levels of description (sieve)");
    let t_iss = best_of_3(|| {
        let mut iss = Iss::new(w.program.clone());
        assert_eq!(iss.run(10_000_000), Stop::Halted);
    });
    let t_interp = best_of_3(|| {
        let mut sim = Interpreter::with_options(&design, InterpOptions::quiet());
        run_to_sink(&mut sim);
    });
    let t_vm = best_of_3(|| {
        let mut sim = Vm::with_options(&design, OptOptions::full(), false);
        run_to_sink(&mut sim);
    });
    println!("{:<28} {:>12.6}", "ISP level (ISS)", t_iss.as_secs_f64());
    println!(
        "{:<28} {:>12.6}",
        "RTL level (interpreter)",
        t_interp.as_secs_f64()
    );
    println!(
        "{:<28} {:>12.6}",
        "RTL level (compiled VM)",
        t_vm.as_secs_f64()
    );
    println!(
        "ISS is {:.0}x faster than the RTL interpreter — the thesis's case for\n\
         designing the instruction set at ISP level first (§1.2).",
        t_interp.as_secs_f64() / t_iss.as_secs_f64().max(1e-12)
    );
}
