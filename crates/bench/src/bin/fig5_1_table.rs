//! Regenerates **Figure 5.1** — "Execution time comparison (in seconds)
//! of ASIM and ASIM II" — end to end, including the host-compiler
//! pipeline, and prints the measured rows next to the paper's numbers.
//!
//! Paper rows (VAX-era seconds, sieve stack machine, 5545 cycles):
//!
//! ```text
//! ASIM      Generate tables      10.8
//!           Simulation time     310.6
//! ASIM II   Generate code        34.2
//!           Pascal Compile       43.2
//!           Simulation time      15.0
//! Traditional  Generate Prototype  100000
//!              Run Prototype        0.01
//! ```
//!
//! The "ASIM" row uses the interpreter's *symbol-table* lookup mode — the
//! per-reference `findname` discipline of the published 1986 source. The
//! modernized interpreter (references pre-resolved to indices) is reported
//! as an extra row for transparency; see `EXPERIMENTS.md`.
//!
//! Run with: `cargo run --release -p rtl-bench --bin fig5_1_table [sieve-size]`

#![forbid(unsafe_code)]

use rtl_bench::{run_to_sink, sieve_sized};
use rtl_compile::{rustc_available, EmitOptions, OptOptions, Vm};
use rtl_interp::{InterpOptions, Interpreter, LookupMode};
use std::time::{Duration, Instant};

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Best-of-5, like the thesis ("The best of 5 time trials was taken").
fn best_of_5(mut f: impl FnMut() -> Duration) -> Duration {
    (0..5).map(|_| f()).min().expect("five trials")
}

fn row(label: &str, measured: Duration, paper: &str) {
    println!("{label:<34} {:>12.6}   {paper}", measured.as_secs_f64());
}

fn main() {
    let size: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let (w, design) = sieve_sized(size);
    let total_cycles = w.cycles + 1;
    println!("Figure 5.1 — execution time comparison (sieve stack machine)");
    println!(
        "workload: sieve size {size}, {} primes, {} cycles (paper: 5545 cycles)",
        w.primes.len(),
        total_cycles
    );
    println!();
    println!("{:<34} {:>12}   paper (s)", "row", "measured (s)");

    // --- ASIM: the 1986-style symbol-table interpreter.
    let prep = best_of_5(|| time(|| Interpreter::new(&design).table_size()).1);
    row("ASIM      Generate tables", prep, "10.8");
    let sim = best_of_5(|| {
        let mut engine = Interpreter::with_options(&design, InterpOptions::faithful());
        time(|| run_to_sink(&mut engine)).1
    });
    row("ASIM      Simulation time", sim, "310.6");
    let sim_indexed = best_of_5(|| {
        let mut engine = Interpreter::with_options(
            &design,
            InterpOptions {
                trace: true,
                lookup: LookupMode::Indexed,
            },
        );
        time(|| run_to_sink(&mut engine)).1
    });
    row("ASIM      (modernized lookups)", sim_indexed, "—");

    // --- ASIM II, tier 1: the in-process compiled VM.
    let vm_prep = best_of_5(|| time(|| Vm::new(&design).program().len()).1);
    row("ASIM II   Generate bytecode", vm_prep, "—");
    let vm_sim = best_of_5(|| {
        let mut engine = Vm::with_options(&design, OptOptions::full(), true);
        time(|| run_to_sink(&mut engine)).1
    });
    row("ASIM II   VM simulation time", vm_sim, "—");

    // --- ASIM II, tier 2: generated Rust compiled by rustc (the paper's
    // generate-Pascal / pc / a.out pipeline).
    if rustc_available() {
        let options = EmitOptions::default();
        let compiled = rtl_compile::build(&design, &options).expect("pipeline builds");
        row("ASIM II   Generate code", compiled.timings.generate, "34.2");
        row(
            "ASIM II   rustc compile",
            compiled.timings.compile,
            "43.2  (paper: Pascal compile)",
        );
        let bin_sim = best_of_5(|| compiled.run(b"").expect("binary runs").1);
        row("ASIM II   Simulation time", bin_sim, "15.0");
        // Sanity: the binary's output matches the oracle.
        let (text, _) = compiled.run(b"").expect("binary runs");
        let printed = text.lines().filter(|l| !l.starts_with("Cycle")).count();
        assert_eq!(printed, w.primes.len(), "binary prints every prime");

        println!();
        println!("speedups (simulation time only):");
        println!(
            "  ASIM / binary            = {:>8.1}x   (paper: ~20x)",
            sim.as_secs_f64() / bin_sim.as_secs_f64().max(1e-12)
        );
        println!(
            "  ASIM / VM                = {:>8.1}x",
            sim.as_secs_f64() / vm_sim.as_secs_f64().max(1e-12)
        );
        println!(
            "  modernized interp / VM   = {:>8.1}x",
            sim_indexed.as_secs_f64() / vm_sim.as_secs_f64().max(1e-12)
        );
        let our_total = prep + sim;
        let their_total = compiled.timings.generate + compiled.timings.compile + bin_sim;
        println!(
            "  end-to-end ASIM / ASIM II = {:>7.1}x   (paper: ~2.5x)",
            our_total.as_secs_f64() / their_total.as_secs_f64().max(1e-12)
        );
        // Where compiling starts to pay off end-to-end. The paper's VAX
        // crossover sat below its 5545-cycle workload; on a modern host
        // rustc is cheap in absolute terms but our interpreter is far
        // faster relative to native code than 1986 Pascal interpretation
        // was, which pushes the crossover to larger cycle counts.
        let interp_per_cycle = sim.as_secs_f64() / total_cycles as f64;
        let binary_per_cycle = bin_sim.as_secs_f64() / total_cycles as f64;
        if interp_per_cycle > binary_per_cycle {
            let fixed = (compiled.timings.generate + compiled.timings.compile).as_secs_f64();
            let crossover = fixed / (interp_per_cycle - binary_per_cycle);
            println!(
                "  end-to-end crossover      = {:.0}k cycles (compiling pays off beyond this)",
                crossover / 1e3
            );
        }
    } else {
        println!("(rustc not found: skipping the generated-binary rows)");
    }

    println!();
    println!("Traditional Generate Prototype                 100000  (thesis estimate)");
    println!("Traditional Run Prototype                        0.01  (thesis estimate)");
}
