//! **A4** — levels of hardware description (§1.2/§2.2.4).
//!
//! The thesis's workflow argument: design the instruction set at ISP
//! level first ("useful in designing an instruction set ... and for
//! simulating that execution"), then descend to RTL. The quantitative
//! basis is that an instruction-set simulator runs orders of magnitude
//! faster than the cycle-accurate RTL model of the same machine. This
//! bench runs the same sieve at all three levels we have.

use criterion::{criterion_group, criterion_main, Criterion};
use rtl_bench::{run_to_sink, sieve};
use rtl_compile::{OptOptions, Vm};
use rtl_interp::{InterpOptions, Interpreter};
use rtl_machines::stack::{Iss, Stop};
use std::time::Duration;

fn levels(c: &mut Criterion) {
    let (w, design) = sieve();
    let mut g = c.benchmark_group("levels_sieve");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));

    g.bench_function("isp_level_iss", |b| {
        b.iter(|| {
            let mut iss = Iss::new(w.program.clone());
            assert_eq!(iss.run(10_000_000), Stop::Halted);
            iss.outputs.len()
        })
    });
    g.bench_function("rtl_level_interp", |b| {
        b.iter(|| {
            let mut sim = Interpreter::with_options(&design, InterpOptions::quiet());
            run_to_sink(&mut sim);
        })
    });
    g.bench_function("rtl_level_vm", |b| {
        b.iter(|| {
            let mut sim = Vm::with_options(&design, OptOptions::full(), false);
            run_to_sink(&mut sim);
        })
    });
    g.finish();
}

criterion_group!(benches, levels);
criterion_main!(benches);
