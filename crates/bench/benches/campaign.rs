//! **Campaign throughput** — does verification scale with cores?
//!
//! A campaign's unit of work is one fuzz case (generate, elaborate, run N
//! engines in lockstep, compare every cycle). Cases are independent by
//! construction, so throughput should scale close to linearly with the
//! worker count until memory bandwidth interferes. This bench pins that
//! curve: the same fixed campaign at 1, 2 and 4 workers, plus the
//! serial-overhead baseline (state writes, collector) at worker count 1
//! against the raw in-process fuzz loop.
//!
//! The second group pins the *distributed* overhead: folding the same
//! completed campaign back together from 1, 2 and 4 shard directories
//! (`rtl_dist::merge` — validation + verbatim record copy). Merge cost
//! should be flat-ish in shard count (the records are the same either
//! way); what this catches is any per-shard validation becoming
//! super-linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtl_campaign::{CampaignConfig, CampaignDir, NoProgress, RunOptions};
use rtl_cosim::{FuzzOptions, GenOptions};
use rtl_dist::ShardPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const CASES: u32 = 32;

fn generator() -> GenOptions {
    GenOptions {
        size: 16,
        cycles: 48,
        ..GenOptions::default()
    }
}

fn scratch() -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "asim2-bench-campaign-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_throughput");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(3));
    g.throughput(criterion::Throughput::Elements(u64::from(CASES)));

    // Baseline: the raw serial fuzz loop, no state, no pool.
    g.bench_function("fuzz_serial_baseline", |b| {
        b.iter(|| {
            let report = rtl_cosim::run_fuzz(&FuzzOptions {
                cases: CASES,
                generator: generator(),
                ..FuzzOptions::default()
            })
            .expect("lanes build");
            assert!(report.clean());
        })
    });

    for workers in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("campaign_workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let root = scratch();
                    let report = rtl_campaign::run(
                        &CampaignDir::new(&root),
                        &CampaignConfig {
                            cases: CASES,
                            generator: generator(),
                            ..CampaignConfig::default()
                        },
                        &RunOptions {
                            workers,
                            ..RunOptions::default()
                        },
                        &mut NoProgress,
                    )
                    .expect("campaign runs");
                    assert!(report.clean());
                    let _ = std::fs::remove_dir_all(&root);
                })
            },
        );
    }
    g.finish();
}

fn merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_throughput");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(3));
    g.throughput(criterion::Throughput::Elements(u64::from(CASES)));

    for shards in [1u32, 2, 4] {
        // Prepare the shard directories once; each iteration only merges.
        let config = CampaignConfig {
            cases: CASES,
            generator: generator(),
            ..CampaignConfig::default()
        };
        let plan = ShardPlan::partition(config, shards).expect("non-empty plan");
        let shard_roots: Vec<std::path::PathBuf> = plan
            .shards
            .iter()
            .map(|spec| {
                let root = scratch();
                let report = rtl_dist::run_shard(
                    &plan,
                    spec.index,
                    &CampaignDir::new(&root),
                    &RunOptions::default(),
                    &mut NoProgress,
                )
                .expect("shard runs");
                assert!(report.clean());
                root
            })
            .collect();

        g.bench_with_input(BenchmarkId::new("merge_shards", shards), &shards, |b, _| {
            b.iter(|| {
                let out = scratch();
                let report = rtl_dist::merge(&plan, &shard_roots, &CampaignDir::new(&out))
                    .expect("merge succeeds");
                assert!(report.clean());
                let _ = std::fs::remove_dir_all(&out);
            })
        });
        for root in &shard_roots {
            let _ = std::fs::remove_dir_all(root);
        }
    }
    g.finish();
}

criterion_group!(benches, campaign, merge);
criterion_main!(benches);
