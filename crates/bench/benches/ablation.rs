//! **A1/A2** — ablations of the compiler's optimizations on the sieve.
//!
//! A1: §4.4's constant-function inlining ("reduce the number of procedure
//! calls") and constant memory-operation specialization.
//! A2: §5.4's future-work latch elision.
//! Each is toggled independently; everything runs on the compiled VM.

use criterion::{criterion_group, criterion_main, Criterion};
use rtl_bench::{run_to_sink, sieve};
use rtl_compile::{OptOptions, Vm};
use std::time::Duration;

fn ablation(c: &mut Criterion) {
    let (_, design) = sieve();
    let full = OptOptions::full();
    let variants: [(&str, OptOptions); 6] = [
        ("full", full),
        (
            "no_inline_alu",
            OptOptions {
                inline_const_alu: false,
                ..full
            },
        ),
        (
            "no_inline_memop",
            OptOptions {
                inline_const_memop: false,
                ..full
            },
        ),
        (
            "no_fold",
            OptOptions {
                fold_constants: false,
                ..full
            },
        ),
        (
            "no_latch_elision",
            OptOptions {
                elide_dead_latches: false,
                ..full
            },
        ),
        ("none", OptOptions::none()),
    ];

    let mut g = c.benchmark_group("ablation_sieve_vm");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));
    for (name, opts) in variants {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut vm = Vm::with_options(&design, opts, true);
                run_to_sink(&mut vm);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
