//! **Figures 4.1–4.3** — code generation.
//!
//! The figures themselves are code artifacts (regenerate them with
//! `asim fig 4.1` etc. and the golden tests in `rtl-compile`). What can be
//! *measured* is the code generator's throughput — the "Generate code
//! 34.2 s" preparation row of Figure 5.1 — for both backends over the
//! figure specs and the full sieve machine.

use criterion::{criterion_group, criterion_main, Criterion};
use rtl_bench::sieve;
use rtl_compile::{emit_pascal, emit_rust, EmitOptions};
use rtl_core::Design;
use std::time::Duration;

fn figs4(c: &mut Criterion) {
    let figs: Vec<(&str, Design)> = [
        ("fig4_1", rtl_machines::classic::FIG4_1),
        ("fig4_2", rtl_machines::classic::FIG4_2),
        ("fig4_3", rtl_machines::classic::FIG4_3),
    ]
    .into_iter()
    .map(|(n, src)| (n, Design::from_source(src).expect("bundled spec")))
    .collect();
    let (_, sieve_design) = sieve();

    let mut g = c.benchmark_group("figs4_codegen");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(2));
    for (name, d) in &figs {
        g.bench_function(format!("{name}_rust"), |b| {
            b.iter(|| emit_rust(d, &EmitOptions::default()).len())
        });
        g.bench_function(format!("{name}_pascal"), |b| {
            b.iter(|| emit_pascal(d, &EmitOptions::default()).len())
        });
    }
    g.bench_function("sieve_machine_rust", |b| {
        b.iter(|| emit_rust(&sieve_design, &EmitOptions::default()).len())
    });
    g.bench_function("sieve_machine_pascal", |b| {
        b.iter(|| emit_pascal(&sieve_design, &EmitOptions::default()).len())
    });
    g.finish();
}

criterion_group!(benches, figs4);
criterion_main!(benches);
