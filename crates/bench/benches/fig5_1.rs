//! **Figure 5.1** — execution time comparison of ASIM and ASIM II.
//!
//! The paper's sieve ran 5545 cycles: ASIM (interpreter) took 310.6 s of
//! simulation, ASIM II's compiled simulator 15.0 s (≈20×). Here the same
//! comparison runs over our sieve workload: the table interpreter vs. the
//! compiled bytecode VM (the in-process tier of ASIM II). The full
//! pipeline including `rustc` and the standalone binary is measured by
//! `cargo run -p rtl-bench --bin fig5_1_table --release`.

use criterion::{criterion_group, criterion_main, Criterion};
use rtl_bench::{run_to_sink, sieve};
use rtl_compile::{OptOptions, Vm};
use rtl_interp::{InterpOptions, Interpreter};
use std::time::Duration;

fn fig5_1(c: &mut Criterion) {
    let (w, design) = sieve();
    let mut g = c.benchmark_group("fig5_1_sieve");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(3));
    g.throughput(criterion::Throughput::Elements(w.cycles as u64 + 1));

    g.bench_function("asim_interpreter", |b| {
        b.iter(|| {
            let mut sim = Interpreter::with_options(&design, InterpOptions::faithful());
            run_to_sink(&mut sim);
        })
    });
    g.bench_function("asim_interpreter_modernized", |b| {
        b.iter(|| {
            let mut sim = Interpreter::with_options(&design, InterpOptions::default());
            run_to_sink(&mut sim);
        })
    });
    g.bench_function("asim2_compiled_vm", |b| {
        b.iter(|| {
            let mut sim = Vm::with_options(&design, OptOptions::full(), true);
            run_to_sink(&mut sim);
        })
    });
    // Preparation phases, separated (the paper's "Generate tables" row vs.
    // the simulation row).
    g.bench_function("asim_generate_tables", |b| {
        b.iter(|| Interpreter::new(&design).table_size())
    });
    g.bench_function("asim2_generate_program", |b| {
        b.iter(|| Vm::new(&design).program().len())
    });
    g.finish();
}

criterion_group!(benches, fig5_1);
criterion_main!(benches);
