//! **A3** — component-count scaling.
//!
//! §5.2 motivates ASIM II with the claim that table interpretation "is too
//! slow for use in large projects". This sweep runs synthetic dependency
//! chains of growing component count for a fixed cycle budget on both
//! engines; per-cycle cost should grow linearly on both, with the VM's
//! slope markedly lower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtl_bench::run_cycles_to_sink;
use rtl_compile::{OptOptions, Vm};
use rtl_core::Design;
use rtl_interp::{InterpOptions, Interpreter};
use rtl_machines::synth::chain;
use std::time::Duration;

const CYCLES: u64 = 500;

fn scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_chain");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(2));
    for n in [8usize, 32, 128, 512] {
        let design = Design::elaborate(&chain(n)).expect("chain elaborates");
        g.throughput(criterion::Throughput::Elements(CYCLES * n as u64));
        g.bench_with_input(BenchmarkId::new("interp", n), &design, |b, d| {
            b.iter(|| {
                let mut sim = Interpreter::with_options(d, InterpOptions::quiet());
                run_cycles_to_sink(&mut sim, CYCLES).expect("chain runs");
            })
        });
        g.bench_with_input(BenchmarkId::new("vm", n), &design, |b, d| {
            b.iter(|| {
                let mut sim = Vm::with_options(d, OptOptions::full(), false);
                run_cycles_to_sink(&mut sim, CYCLES).expect("chain runs");
            })
        });
    }
    g.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
