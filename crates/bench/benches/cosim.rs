//! **Cosim throughput** — the overhead of trust.
//!
//! Lockstep verification costs extra engine work plus per-interval
//! comparison. This bench tracks (a) the cosim harness against a single
//! engine running the same workload, (b) how the `compare_every` stride
//! amortizes comparison cost — the knob that makes checkpointed long
//! runs affordable — and (c) the cost of each comparator *lens*
//! (trace-bytes vs vcd-diff vs the composite) across strides, so the
//! `--compare` choice is an informed trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtl_bench::run_cycles_to_sink;
use rtl_compile::{OptOptions, Vm};
use rtl_core::observe::CompareMode;
use rtl_core::Design;
use rtl_cosim::{CosimOptions, EngineKind, Lockstep};
use rtl_machines::synth::chain;
use std::time::Duration;

const CYCLES: u64 = 500;

fn cosim(c: &mut Criterion) {
    let design = Design::elaborate(&chain(64)).expect("chain elaborates");
    let mut g = c.benchmark_group("cosim_chain64");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(2));
    g.throughput(criterion::Throughput::Elements(CYCLES * 64));

    // Baseline: one engine, no verification.
    g.bench_function("vm_alone", |b| {
        b.iter(|| {
            let mut sim = Vm::with_options(&design, OptOptions::full(), false);
            run_cycles_to_sink(&mut sim, CYCLES).expect("chain runs");
        })
    });

    // Lockstep interp+vm at several comparison strides.
    for stride in [1u64, 16, 128] {
        g.bench_with_input(
            BenchmarkId::new("lockstep_interp_vm", stride),
            &stride,
            |b, &stride| {
                b.iter(|| {
                    let options = CosimOptions {
                        compare_every: stride,
                        trace: false,
                        ..CosimOptions::default()
                    };
                    let mut lockstep = Lockstep::new(&design, options);
                    lockstep
                        .add_engine(EngineKind::Interp)
                        .add_engine(EngineKind::Vm);
                    assert!(lockstep.run(CYCLES).agreed());
                })
            },
        );
    }

    // Comparator-cost ablation: the same interp+vm lockstep under one
    // lens at a time. The trace lens needs trace text on (that is what
    // it compares); the state lenses run trace-off so the ablation
    // isolates comparison cost from formatting cost.
    for (label, mode, trace) in [
        ("comparator_trace", CompareMode::Trace, true),
        ("comparator_vcd", CompareMode::Vcd, false),
        ("comparator_all", CompareMode::All, true),
    ] {
        for stride in [1u64, 16, 256] {
            g.bench_with_input(BenchmarkId::new(label, stride), &stride, |b, &stride| {
                b.iter(|| {
                    let options = CosimOptions {
                        compare_every: stride,
                        trace,
                        compare: vec![mode],
                        ..CosimOptions::default()
                    };
                    let mut lockstep = Lockstep::new(&design, options);
                    lockstep
                        .add_engine(EngineKind::Interp)
                        .add_engine(EngineKind::Vm);
                    assert!(lockstep.run(CYCLES).agreed());
                })
            });
        }
    }

    // Four-tier pile-up: the full registry in one harness.
    g.bench_function("lockstep_all_tiers", |b| {
        b.iter(|| {
            let options = CosimOptions {
                compare_every: 16,
                trace: false,
                ..CosimOptions::default()
            };
            let mut lockstep = Lockstep::new(&design, options);
            for kind in EngineKind::ALL {
                lockstep.add_engine(kind);
            }
            assert!(lockstep.run(CYCLES).agreed());
        })
    });
    g.finish();
}

criterion_group!(benches, cosim);
criterion_main!(benches);
