//! End-to-end checks for the observability layer: deterministic-counter
//! identity across worker counts and kill+resume, the no-perturbation
//! guarantee for `--metrics-out`, the progress/quiet stderr contract,
//! and the bench snapshot document.

use proptest::prelude::*;
use rtl_obs::{Recorder, Summary};

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    let code = asim_cli::run(&args, &mut out, &mut err);
    (
        code,
        String::from_utf8(out).unwrap(),
        String::from_utf8(err).unwrap(),
    )
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("asim2-metrics-it-{}-{name}", std::process::id()))
}

/// Runs a small campaign into `dir` with extra flags appended, returning
/// (code, stdout, stderr).
fn small_campaign(dir: &std::path::Path, extra: &[&str]) -> (i32, String, String) {
    let d = dir.to_str().unwrap().to_string();
    let mut args = vec![
        "campaign", "run", "--dir", &d, "--cases", "6", "--seed", "2", "--cycles", "24", "--size",
        "10",
    ];
    args.extend_from_slice(extra);
    run_cli(&args)
}

#[test]
fn det_counters_identical_across_worker_counts() {
    let (dir1, dir4) = (tmp("w1-dir"), tmp("w4-dir"));
    let (m1, m4) = (tmp("w1.jsonl"), tmp("w4.jsonl"));
    for p in [&dir1, &dir4] {
        let _ = std::fs::remove_dir_all(p);
    }
    let m1s = m1.to_str().unwrap().to_string();
    let m4s = m4.to_str().unwrap().to_string();

    let (code, out1, err) = small_campaign(&dir1, &["--workers", "1", "--metrics-out", &m1s]);
    assert_eq!(code, 0, "{err}");
    let (code, out4, err) = small_campaign(&dir4, &["--workers", "4", "--metrics-out", &m4s]);
    assert_eq!(code, 0, "{err}");
    assert_eq!(out1, out4, "worker count must not change the report");

    let (code, out, err) = run_cli(&["metrics", "summarize", "--check", &m1s, &m4s]);
    assert_eq!(code, 0, "{out}{err}");
    assert!(out.contains("identical across 2 runs"), "{out}");
    assert!(out.contains("campaign/cases_executed 6"), "{out}");
    assert!(out.contains("session/cycles"), "{out}");

    // The plain summary also renders the wall-clock section, flagged.
    let (code, summary, _) = run_cli(&["metrics", "summarize", &m1s]);
    assert_eq!(code, 0);
    assert!(summary.contains("non-deterministic"), "{summary}");

    for p in [&dir1, &dir4] {
        let _ = std::fs::remove_dir_all(p);
    }
    for p in [&m1, &m4] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn kill_resume_folds_to_the_uninterrupted_det_section() {
    let (dir_a, dir_b) = (tmp("resume-dir"), tmp("full-dir"));
    let (m1, m2, m3) = (tmp("part1.jsonl"), tmp("part2.jsonl"), tmp("full.jsonl"));
    for p in [&dir_a, &dir_b] {
        let _ = std::fs::remove_dir_all(p);
    }
    let m1s = m1.to_str().unwrap().to_string();
    let m2s = m2.to_str().unwrap().to_string();
    let m3s = m3.to_str().unwrap().to_string();

    // Interrupted run: 3 cases, then resume for the rest.
    let (code, _, err) = small_campaign(&dir_a, &["--limit", "3", "--metrics-out", &m1s]);
    assert_eq!(code, 0, "{err}");
    let d = dir_a.to_str().unwrap();
    let (code, _, err) = run_cli(&["campaign", "resume", "--dir", d, "--metrics-out", &m2s]);
    assert_eq!(code, 0, "{err}");

    // Uninterrupted reference run.
    let (code, _, err) = small_campaign(&dir_b, &["--metrics-out", &m3s]);
    assert_eq!(code, 0, "{err}");

    // The two partial logs fold to the same deterministic section as the
    // uninterrupted one.
    let group = format!("{m1s},{m2s}");
    let (code, out, err) = run_cli(&["metrics", "summarize", "--check", &group, &m3s]);
    assert_eq!(code, 0, "{out}{err}");

    for p in [&dir_a, &dir_b] {
        let _ = std::fs::remove_dir_all(p);
    }
    for p in [&m1, &m2, &m3] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn metrics_out_never_perturbs_campaign_outputs() {
    let (plain_dir, metered_dir) = (tmp("plain-dir"), tmp("metered-dir"));
    let metrics = tmp("perturb.jsonl");
    for p in [&plain_dir, &metered_dir] {
        let _ = std::fs::remove_dir_all(p);
    }
    let ms = metrics.to_str().unwrap().to_string();

    let (code, plain_out, _) = small_campaign(&plain_dir, &[]);
    assert_eq!(code, 0);
    let (code, metered_out, _) = small_campaign(&metered_dir, &["--metrics-out", &ms]);
    assert_eq!(code, 0);
    assert_eq!(
        plain_out, metered_out,
        "--metrics-out must not change the stdout report"
    );

    // Manifest and every case record stay bit-identical.
    let manifest = |d: &std::path::Path| std::fs::read(d.join("campaign.json")).unwrap();
    assert_eq!(manifest(&plain_dir), manifest(&metered_dir));
    let mut names: Vec<String> = std::fs::read_dir(plain_dir.join("cases"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(!names.is_empty());
    for name in names {
        assert_eq!(
            std::fs::read(plain_dir.join("cases").join(&name)).unwrap(),
            std::fs::read(metered_dir.join("cases").join(&name)).unwrap(),
            "case record {name} differs"
        );
    }

    for p in [&plain_dir, &metered_dir] {
        let _ = std::fs::remove_dir_all(p);
    }
    let _ = std::fs::remove_file(metrics);
}

#[test]
fn check_flags_a_real_difference_with_exit_3() {
    let (dir_a, dir_b) = (tmp("diff-a"), tmp("diff-b"));
    let (ma, mb) = (tmp("diff-a.jsonl"), tmp("diff-b.jsonl"));
    for p in [&dir_a, &dir_b] {
        let _ = std::fs::remove_dir_all(p);
    }
    let mas = ma.to_str().unwrap().to_string();
    let mbs = mb.to_str().unwrap().to_string();

    let (code, _, err) = small_campaign(&dir_a, &["--metrics-out", &mas]);
    assert_eq!(code, 0, "{err}");
    // A different case count produces different deterministic counters.
    let db = dir_b.to_str().unwrap();
    let (code, _, err) = run_cli(&[
        "campaign",
        "run",
        "--dir",
        db,
        "--cases",
        "4",
        "--seed",
        "2",
        "--cycles",
        "24",
        "--size",
        "10",
        "--metrics-out",
        &mbs,
    ]);
    assert_eq!(code, 0, "{err}");

    let (code, _, err) = run_cli(&["metrics", "summarize", "--check", &mas, &mbs]);
    assert_eq!(code, 3, "{err}");
    assert!(err.contains("deterministic counters differ"), "{err}");

    for p in [&dir_a, &dir_b] {
        let _ = std::fs::remove_dir_all(p);
    }
    for p in [&ma, &mb] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn progress_and_quiet_control_stderr_only() {
    let dir = tmp("progress-dir");
    let _ = std::fs::remove_dir_all(&dir);

    // --progress=0: every case is due, so progress lines show up even on
    // a fast run; the rate line and the throughput line share stderr.
    let (code, _, err) = small_campaign(&dir, &["--progress=0"]);
    assert_eq!(code, 0, "{err}");
    assert!(err.contains("cases/s"), "{err}");
    assert!(err.contains("[6/6]"), "{err}");

    // --quiet: stderr stays empty on a clean run.
    let _ = std::fs::remove_dir_all(&dir);
    let (code, _, err) = small_campaign(&dir, &["--quiet"]);
    assert_eq!(code, 0, "{err}");
    assert!(err.is_empty(), "--quiet must silence stderr: {err:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_event_log_is_a_load_error() {
    let path = tmp("garbage.jsonl");
    std::fs::write(&path, "this is not an event log\n").unwrap();
    let ps = path.to_str().unwrap().to_string();
    let (code, _, err) = run_cli(&["metrics", "summarize", &ps]);
    assert_eq!(code, 2, "{err}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn bench_snapshot_quick_writes_a_versioned_document() {
    let path = tmp("bench.json");
    let ps = path.to_str().unwrap().to_string();
    let (code, _, err) = run_cli(&["bench", "snapshot", "--quick", "--out", &ps]);
    assert_eq!(code, 0, "{err}");
    let doc = std::fs::read_to_string(&path).unwrap();
    assert!(doc.contains("asim2-bench-snapshot v1"), "{doc}");
    assert!(doc.contains("lockstep_stride_1"), "{doc}");
    assert!(doc.contains("campaign_workers_4"), "{doc}");
    assert!(doc.contains("merge_2_shards"), "{doc}");
    let _ = std::fs::remove_file(path);
}

proptest! {
    /// Splitting a counter stream across any number of per-worker logs —
    /// in any interleaving — folds to the identical deterministic
    /// section: the obs-level statement of the campaign's worker-count
    /// independence.
    #[test]
    fn split_counter_streams_fold_identically(
        raw in proptest::collection::vec(0u64..1_000_000, 1..40),
        workers in 1usize..5,
    ) {
        let srcs = ["campaign", "session", "lockstep", "merge"];
        let keys = ["cases_executed", "cycles", "divergences"];
        // The vendored proptest has no tuple strategies: decompose each
        // drawn word into (src, key, increment).
        let counts: Vec<(usize, usize, u64)> = raw
            .iter()
            .map(|&x| ((x % 4) as usize, ((x / 4) % 3) as usize, x / 12 % 100 + 1))
            .collect();

        // One log holding the whole stream.
        let (single, single_log) = Recorder::memory();
        for &(s, k, n) in &counts {
            single.count(srcs[s], keys[k], n);
        }
        single.flush();

        // The same stream dealt round-robin across `workers` logs.
        let sharded: Vec<_> = (0..workers).map(|_| Recorder::memory()).collect();
        for (i, &(s, k, n)) in counts.iter().enumerate() {
            sharded[i % workers].0.count(srcs[s], keys[k], n);
        }

        let mut reference = Summary::new();
        reference.fold_text(&single_log.text(), "single").unwrap();
        let mut folded = Summary::new();
        for (i, (recorder, log)) in sharded.iter().enumerate() {
            recorder.flush();
            folded.fold_text(&log.text(), &format!("worker{i}")).unwrap();
        }
        prop_assert_eq!(
            reference.deterministic_section(),
            folded.deterministic_section()
        );
    }
}
