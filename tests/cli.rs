//! End-to-end CLI checks through the library entry point (the binary is a
//! one-line wrapper over `asim_cli::run`).

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    let code = asim_cli::run(&args, &mut out, &mut err);
    (
        code,
        String::from_utf8(out).unwrap(),
        String::from_utf8(err).unwrap(),
    )
}

fn write_spec(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("asim2-it-{}-{name}.asim", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn full_workflow_check_run_compile_netlist() {
    let (code, counter, _) = run_cli(&["spec", "counter"]);
    assert_eq!(code, 0);
    let path = write_spec("workflow", &counter);
    let path = path.to_str().unwrap();

    let (code, out, _) = run_cli(&["check", path, "-v"]);
    assert_eq!(code, 0);
    assert!(out.contains("components read."), "{out}");

    let (code, run_out, _) = run_cli(&["run", path]);
    assert_eq!(code, 0);
    assert!(
        run_out.contains("Cycle  16 count= 0"),
        "counter wraps: {run_out}"
    );

    let (code, rust, _) = run_cli(&["compile", path]);
    assert_eq!(code, 0);
    assert!(rust.contains("fn main()"), "{rust}");

    let (code, report, _) = run_cli(&["netlist", path]);
    assert_eq!(code, 0);
    assert!(report.contains("bill of materials"), "{report}");
}

#[test]
fn generated_sieve_spec_runs_through_the_cli() {
    let (code, sieve, _) = run_cli(&["spec", "sieve"]);
    assert_eq!(code, 0);
    let path = write_spec("sieve", &sieve);

    let (code, out, err) = run_cli(&["run", path.to_str().unwrap(), "--no-trace"]);
    assert_eq!(code, 0, "{err}");
    let primes: Vec<&str> = out.lines().collect();
    assert_eq!(primes.first(), Some(&"3"), "{out}");
    assert_eq!(primes.last(), Some(&"41"), "{out}");
}

#[test]
fn checkpoint_resume_is_byte_identical_to_an_uninterrupted_run() {
    // A free-running counter (no `= n` clause), driven by --cycles.
    let spec = write_spec(
        "ckpt",
        "# checkpoint counter\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
    );
    let spec = spec.to_str().unwrap();
    let ck = std::env::temp_dir().join(format!("asim2-it-{}-ckpt.state", std::process::id()));
    let ck = ck.to_str().unwrap();

    // Uninterrupted reference run: cycles 0..=100.
    let (code, full, err) = run_cli(&["run", spec, "--cycles", "100"]);
    assert_eq!(code, 0, "{err}");

    // The same run with periodic checkpoints must not perturb the trace;
    // the file is left at the last boundary (cycle 64).
    let (code, checkpointed, err) = run_cli(&[
        "run",
        spec,
        "--cycles",
        "100",
        "--checkpoint",
        ck,
        "--checkpoint-every",
        "64",
    ]);
    assert_eq!(code, 0, "{err}");
    assert_eq!(checkpointed, full, "checkpointing must not change the run");

    // Resuming from the checkpoint replays cycles 64..=100 byte-identically.
    let (code, resumed, err) = run_cli(&["run", spec, "--cycles", "100", "--resume", ck]);
    assert_eq!(code, 0, "{err}");
    assert!(resumed.starts_with("Cycle  64 "), "{resumed}");
    assert!(
        full.ends_with(&resumed),
        "resumed tail must be byte-identical to the uninterrupted run"
    );
    assert_eq!(
        full.lines().count(),
        resumed.lines().count() + 64,
        "resume picks up exactly at the checkpointed cycle"
    );

    // A checkpoint refuses to load over a different design.
    let other = write_spec("ckpt-other", "# other\nx y .\nA x 2 1 0\nA y 2 2 0 .");
    let (code, _, err) = run_cli(&[
        "run",
        other.to_str().unwrap(),
        "--cycles",
        "10",
        "--resume",
        ck,
    ]);
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("fingerprint"), "{err}");
}

#[test]
fn cosim_runs_the_generated_rust_subprocess_lane() {
    if !asim2::compile::rustc_available() {
        eprintln!("skipping: rustc not on PATH");
        return;
    }
    let (code, out, err) = run_cli(&[
        "cosim",
        "--scenario",
        "classic/counter",
        "--cycles",
        "48",
        "--engines",
        "interp,vm,rust",
    ]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("48 cycles verified, no divergence"), "{out}");
}

#[test]
fn campaign_end_to_end_run_interrupt_resume_replay() {
    let dir = std::env::temp_dir().join(format!("asim2-it-{}-campaign", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let d = dir.to_str().unwrap();

    // Start a small parallel campaign, interrupted after 3 cases.
    let (code, out, err) = run_cli(&[
        "campaign",
        "run",
        "--dir",
        d,
        "--cases",
        "8",
        "--seed",
        "2",
        "--cycles",
        "24",
        "--size",
        "10",
        "--workers",
        "4",
        "--limit",
        "3",
    ]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("(3/8 cases done"), "{out}");
    assert!(err.contains("cases/s"), "throughput on stderr: {err}");

    // Resume completes the remaining cases; summary shows the full run.
    let (code, resumed, err) = run_cli(&["campaign", "resume", "--dir", d, "--workers", "2"]);
    assert_eq!(code, 0, "{err}");
    assert!(
        resumed.contains("summary: 8/8 agreed, 0 diverged"),
        "{resumed}"
    );

    // An empty corpus replays clean.
    let (code, replay, err) = run_cli(&["campaign", "replay", "--dir", d]);
    assert_eq!(code, 0, "{err}");
    assert!(replay.contains("corpus replay: 0 entries"), "{replay}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_archives_and_reproduces_an_injected_engine_bug() {
    let dir = std::env::temp_dir().join(format!("asim2-it-{}-campaign-bug", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let d = dir.to_str().unwrap();

    // The vm-fault lane corrupts trace bytes from cycle 40: the campaign
    // finds the divergence, shrinks it, and archives a corpus entry.
    let (code, out, err) = run_cli(&[
        "campaign",
        "run",
        "--dir",
        d,
        "--cases",
        "1",
        "--seed",
        "9",
        "--cycles",
        "64",
        "--engines",
        "interp,vm-fault",
    ]);
    assert_eq!(code, 3, "{out}\n{err}");
    assert!(
        out.contains("DIVERGED at cycle 40 (trace) -> corpus seed-9"),
        "{out}"
    );
    assert!(dir.join("corpus/seed-9.asim").is_file());
    assert!(dir.join("corpus/seed-9.ckpt").is_file());

    // Replay reproduces it (exit 3); the healthy lane pair is clean.
    let (code, out, _) = run_cli(&["campaign", "replay", "--dir", d]);
    assert_eq!(code, 3);
    assert!(out.contains("REPRODUCED at cycle 40 (trace)"), "{out}");
    let (code, out, err) = run_cli(&["campaign", "replay", "--dir", d, "--engines", "interp,vm"]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("bug no longer reproduces"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn figure_commands_work_from_the_top() {
    for fig in ["3.1", "4.1", "4.2", "4.3"] {
        let (code, out, err) = run_cli(&["fig", fig]);
        assert_eq!(code, 0, "fig {fig}: {err}");
        assert!(!out.is_empty(), "fig {fig} produced nothing");
    }
}
