//! End-to-end CLI checks through the library entry point (the binary is a
//! one-line wrapper over `asim_cli::run`).

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    let code = asim_cli::run(&args, &mut out, &mut err);
    (
        code,
        String::from_utf8(out).unwrap(),
        String::from_utf8(err).unwrap(),
    )
}

fn write_spec(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("asim2-it-{}-{name}.asim", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn full_workflow_check_run_compile_netlist() {
    let (code, counter, _) = run_cli(&["spec", "counter"]);
    assert_eq!(code, 0);
    let path = write_spec("workflow", &counter);
    let path = path.to_str().unwrap();

    let (code, out, _) = run_cli(&["check", path, "-v"]);
    assert_eq!(code, 0);
    assert!(out.contains("components read."), "{out}");

    let (code, run_out, _) = run_cli(&["run", path]);
    assert_eq!(code, 0);
    assert!(
        run_out.contains("Cycle  16 count= 0"),
        "counter wraps: {run_out}"
    );

    let (code, rust, _) = run_cli(&["compile", path]);
    assert_eq!(code, 0);
    assert!(rust.contains("fn main()"), "{rust}");

    let (code, report, _) = run_cli(&["netlist", path]);
    assert_eq!(code, 0);
    assert!(report.contains("bill of materials"), "{report}");
}

#[test]
fn generated_sieve_spec_runs_through_the_cli() {
    let (code, sieve, _) = run_cli(&["spec", "sieve"]);
    assert_eq!(code, 0);
    let path = write_spec("sieve", &sieve);

    let (code, out, err) = run_cli(&["run", path.to_str().unwrap(), "--no-trace"]);
    assert_eq!(code, 0, "{err}");
    let primes: Vec<&str> = out.lines().collect();
    assert_eq!(primes.first(), Some(&"3"), "{out}");
    assert_eq!(primes.last(), Some(&"41"), "{out}");
}

#[test]
fn figure_commands_work_from_the_top() {
    for fig in ["3.1", "4.1", "4.2", "4.3"] {
        let (code, out, err) = run_cli(&["fig", fig]);
        assert_eq!(code, 0, "fig {fig}: {err}");
        assert!(!out.is_empty(), "fig {fig} produced nothing");
    }
}
