//! Cross-engine differential testing (S2 in `DESIGN.md`), routed through
//! the `rtl-cosim` subsystem: the interpreter and the VM (at every
//! optimization level) must agree cycle-for-cycle — trace bytes, cycle
//! counters, observable outputs and memory cells — on every bundled spec
//! and on seeded random designs. The generated Rust binary joins in for a
//! sample of them (cosim drives in-process engines; the rustc pipeline
//! stays a direct comparison).

use asim2::cosim::{run_corpus, run_scenario, CosimOptions, EngineKind, Lockstep};
use asim2::machines::{scenarios, synth};
use asim2::prelude::*;

/// The three in-process tiers every design must agree across.
const TIERS: [EngineKind; 3] = [EngineKind::Interp, EngineKind::Vm, EngineKind::VmNoOpt];

fn assert_lockstep_agrees(design: &Design, cycles: u64) -> String {
    let options = CosimOptions {
        retain_output: true,
        ..CosimOptions::default()
    };
    let mut lockstep = Lockstep::new(design, options);
    for kind in TIERS {
        lockstep.add_engine(kind);
    }
    let outcome = lockstep.run(cycles);
    assert!(outcome.agreed(), "{outcome:?}");
    String::from_utf8(lockstep.agreed_output().to_vec()).expect("trace is utf-8")
}

#[test]
fn bundled_specs_agree() {
    for (name, src) in asim2::machines::classic::ALL {
        let design = Design::from_source(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let cycles = design.cycles().unwrap_or(10) as u64 + 1;
        let text = assert_lockstep_agrees(&design, cycles);
        assert!(!text.is_empty(), "{name} produced no output");
    }
}

#[test]
fn random_designs_agree_across_100_seeds() {
    for seed in 0..100 {
        let spec = synth::random_spec(seed, 25);
        let design = Design::elaborate(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_lockstep_agrees(&design, 30);
    }
}

#[test]
fn full_scenario_corpus_agrees_at_its_registered_horizons() {
    // The acceptance sweep: every registered scenario (>= 1000 cycles
    // each), all three in-process tiers, compared every cycle.
    let report = run_corpus(&TIERS, None, &CosimOptions::default());
    assert!(report.clean(), "{report}");
    assert!(report.total_cycles() >= 16_000, "{report}");
}

#[test]
fn coarse_comparison_matches_fine_on_the_corpus() {
    // compare_every > 1 exercises the snapshot/rewind path on real
    // machines; verdicts must not change.
    let options = CosimOptions {
        compare_every: 64,
        ..CosimOptions::default()
    };
    let report = run_corpus(&[EngineKind::Interp, EngineKind::Vm], Some(256), &options);
    assert!(report.clean(), "{report}");
}

#[test]
fn random_designs_agree_with_generated_rust() {
    if !asim2::compile::rustc_available() {
        eprintln!("skipping: rustc not on PATH");
        return;
    }
    // The rustc pipeline is expensive; sample a few seeds.
    for seed in [3, 17, 42] {
        let spec = synth::random_spec(seed, 15);
        let design = Design::elaborate(&spec).unwrap();

        let mut session = Session::over(Interpreter::new(&design)).capture().build();
        session
            .run(Until::Cycle(25))
            .into_result()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let expected = session.output_text();

        let options = EmitOptions {
            cycles: Some(25),
            ..EmitOptions::default()
        };
        let compiled =
            asim2::compile::build(&design, &options).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let (got, _) = compiled
            .run(b"")
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn scripted_input_agrees_across_engines() {
    let src = "# io\ni* o acc n .\nM i 1 0 2 1\nM acc 0 n 1 1\nA n 4 acc i\nM o 1 acc 3 1 .";
    let design = Design::from_source(src).unwrap();

    let mut lockstep = Lockstep::new(
        &design,
        CosimOptions {
            retain_output: true,
            ..CosimOptions::default()
        },
    );
    lockstep.stimulus((1..=6).collect::<Vec<i64>>());
    for kind in TIERS {
        lockstep.add_engine(kind);
    }
    assert!(lockstep.run(6).agreed());
    let text = String::from_utf8(lockstep.agreed_output().to_vec()).unwrap();
    // The accumulator output stream shows the running sum of the inputs,
    // delayed by the input latch.
    assert!(text.contains("i= 1"), "{text}");
}

#[test]
fn tiny_computer_engines_agree() {
    let image = asim2::machines::tiny::divider_image(23, 4);
    let spec =
        asim2::machines::tiny::rtl::spec_with_trace(&image, Some(400), &["state", "pc", "ac"]);
    let design = Design::elaborate(&spec).unwrap();
    assert_lockstep_agrees(&design, 401);
}

#[test]
fn registry_scenarios_run_individually() {
    for name in ["classic/gcd", "io/accumulator", "io/echo"] {
        let scenario = scenarios::by_name(name).expect("registered");
        let outcome = run_scenario(&scenario, &TIERS, &CosimOptions::default()).unwrap();
        assert!(outcome.agreed(), "{name}: {outcome:?}");
    }
}
