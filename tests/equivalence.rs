//! Cross-engine differential testing (S2 in `DESIGN.md`): the interpreter
//! and the VM must produce byte-identical output on every bundled spec and
//! on seeded random designs; the generated Rust binary joins in for a
//! sample of them.

use asim2::machines::synth;
use asim2::prelude::*;

fn run_engine<E: Engine>(engine: &mut E, cycles: u64) -> String {
    match run_captured(engine, cycles) {
        Ok(text) => text,
        Err((text, e)) => panic!("engine failed: {e}\n{text}"),
    }
}

fn assert_engines_agree(design: &Design, cycles: u64) -> String {
    let mut interp = Interpreter::new(design);
    let expected = run_engine(&mut interp, cycles);
    for opts in [OptOptions::full(), OptOptions::none()] {
        let mut vm = Vm::with_options(design, opts, true);
        let got = run_engine(&mut vm, cycles);
        assert_eq!(got, expected, "VM with {opts:?} diverged");
    }
    expected
}

#[test]
fn bundled_specs_agree() {
    for (name, src) in asim2::machines::classic::ALL {
        let design = Design::from_source(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let cycles = design.cycles().unwrap_or(10) as u64 + 1;
        let text = assert_engines_agree(&design, cycles);
        assert!(!text.is_empty(), "{name} produced no output");
    }
}

#[test]
fn random_designs_agree_across_100_seeds() {
    for seed in 0..100 {
        let spec = synth::random_spec(seed, 25);
        let design = Design::elaborate(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_engines_agree(&design, 30);
    }
}

#[test]
fn random_designs_agree_with_generated_rust() {
    if !asim2::compile::rustc_available() {
        eprintln!("skipping: rustc not on PATH");
        return;
    }
    // The rustc pipeline is expensive; sample a few seeds.
    for seed in [3, 17, 42] {
        let spec = synth::random_spec(seed, 15);
        let design = Design::elaborate(&spec).unwrap();

        let mut interp = Interpreter::new(&design);
        let mut out = Vec::new();
        interp
            .run_to_cycle(25, &mut out, &mut NoInput)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let expected = String::from_utf8(out).unwrap();

        let options = EmitOptions { cycles: Some(25), ..EmitOptions::default() };
        let compiled =
            asim2::compile::build(&design, &options).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let (got, _) = compiled.run(b"").unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn scripted_input_agrees_across_engines() {
    let src = "# io\ni* o acc n .\nM i 1 0 2 1\nM acc 0 n 1 1\nA n 4 acc i\nM o 1 acc 3 1 .";
    let design = Design::from_source(src).unwrap();
    let inputs: Vec<i64> = (1..=6).collect();

    let mut texts = Vec::new();
    {
        let mut sim = Interpreter::new(&design);
        let mut out = Vec::new();
        let mut input = ScriptedInput::new(inputs.clone());
        sim.run(6, &mut out, &mut input).unwrap();
        texts.push(String::from_utf8(out).unwrap());
    }
    {
        let mut sim = Vm::new(&design);
        let mut out = Vec::new();
        let mut input = ScriptedInput::new(inputs);
        sim.run(6, &mut out, &mut input).unwrap();
        texts.push(String::from_utf8(out).unwrap());
    }
    assert_eq!(texts[0], texts[1]);
    // The accumulator output stream shows the running sum of the inputs,
    // delayed by the input latch.
    assert!(texts[0].contains("i= 1"), "{}", texts[0]);
}

#[test]
fn tiny_computer_engines_agree() {
    let image = asim2::machines::tiny::divider_image(23, 4);
    let spec = asim2::machines::tiny::rtl::spec_with_trace(
        &image,
        Some(400),
        &["state", "pc", "ac"],
    );
    let design = Design::elaborate(&spec).unwrap();
    assert_engines_agree(&design, 401);
}
