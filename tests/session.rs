//! Session-layer integration tests: the snapshot → run → restore → replay
//! property across *every registered in-process engine*, and the
//! checkpoint file format driven end to end through `Session`.

use asim2::cosim::{generate_scenario, GenOptions};
use asim2::prelude::*;
use proptest::prelude::*;

/// Every stepped lane in the default registry (stream lanes — the
/// generated-Rust subprocess — have no snapshot to exercise).
fn stepped_names() -> Vec<String> {
    let reg = registry();
    reg.names()
        .into_iter()
        .filter(|n| reg.get(n).expect("listed name resolves").is_stepped())
        .map(String::from)
        .collect()
}

#[test]
fn the_registry_has_every_inprocess_tier() {
    let names = stepped_names();
    for expected in ["interp", "interp-faithful", "vm", "vm-noopt"] {
        assert!(names.iter().any(|n| n == expected), "{names:?}");
    }
}

proptest! {
    /// For every registered engine: `snapshot` → run k cycles → `restore`
    /// → re-run k cycles is trace-byte-identical. This is the property
    /// `Session::checkpoint`/`resume` and the cosim rewind bisection both
    /// stand on. (Input-free scenarios: the stimulus cursor is not part of
    /// an engine snapshot — resuming scripted input is the driver's job.)
    #[test]
    fn snapshot_restore_replay_is_trace_identical(
        seed in 0u64..50,
        warmup in 0u64..16,
        k in 1u64..32,
    ) {
        let options = GenOptions { size: 12, cycles: 80, io_every: 0 };
        let scenario = generate_scenario(seed, &options);
        let design = scenario.design().expect("generated scenarios elaborate");
        for name in stepped_names() {
            let mut session = Session::builder(&design)
                .engine_named(registry(), &name, &EngineOptions::default())
                .expect("stepped lanes build")
                .capture()
                .build();
            prop_assert!(session.run(Until::Cycles(warmup)).completed(), "{name} warmup");

            let snap = session.engine().snapshot();
            let mark = session.output().len();
            prop_assert!(session.run(Until::Cycles(k)).completed(), "{name} first run");
            let first = session.output()[mark..].to_vec();
            let state_first = session.engine().snapshot();

            session.engine_mut().restore(&snap);
            let mark = session.output().len();
            prop_assert!(session.run(Until::Cycles(k)).completed(), "{name} replay");
            let second = session.output()[mark..].to_vec();

            prop_assert_eq!(&first, &second, "engine {} replay trace diverged", name);
            prop_assert_eq!(
                &state_first, &session.engine().snapshot(),
                "engine {} replay state diverged", name
            );
        }
    }

    /// The on-disk checkpoint round-trips through Session for every
    /// engine: write at cycle w, resume into a fresh session, and the
    /// continuation is byte-identical to the uninterrupted run.
    #[test]
    fn checkpoint_resume_matches_uninterrupted(seed in 0u64..20, w in 1u64..24) {
        let options = GenOptions { size: 10, cycles: 64, io_every: 0 };
        let scenario = generate_scenario(seed, &options);
        let design = scenario.design().expect("generated scenarios elaborate");
        for name in stepped_names() {
            let build = || {
                Session::builder(&design)
                    .engine_named(registry(), &name, &EngineOptions::default())
                    .expect("stepped lanes build")
                    .capture()
                    .build()
            };
            // Uninterrupted: w + 16 cycles.
            let mut full = build();
            prop_assert!(full.run(Until::Cycles(w + 16)).completed());

            // Interrupted: run w, checkpoint into memory, resume a fresh
            // session, run 16 more.
            let mut first = build();
            prop_assert!(first.run(Until::Cycles(w)).completed());
            let mut doc = Vec::new();
            first.checkpoint(&mut doc).expect("vec write");

            let mut resumed = build();
            resumed.resume(&mut &doc[..]).expect("checkpoint loads");
            prop_assert_eq!(resumed.cycle(), first.cycle(), "resume restores the cycle");
            prop_assert!(resumed.run(Until::Cycles(16)).completed());

            let expected_tail = &full.output()[first.output().len()..];
            prop_assert_eq!(
                resumed.output(), expected_tail,
                "engine {} resumed tail diverged", name
            );
        }
    }
}
