//! Golden checks for every figure in the thesis (S3 in `DESIGN.md`).
//! The timing *numbers* of Figure 5.1 are measured by `rtl-bench`; here we
//! pin the figure *artifacts*: values, generated-code shapes, and the
//! structural relationships that must hold at any machine speed.

use asim2::compile::{lower, stats, OptOptions};
use asim2::machines::classic;
use asim2::prelude::*;

/// Figure 3.1 — the bit concatenation example, evaluated.
#[test]
fn figure_3_1_bit_concatenation() {
    // mem = 0b11000 (bits 3 and 4 set), count = 0b10 (bit 1 set).
    // mem.3.4,#01,count.1 = [1 1][0 1][1] = 0b11011 = 27.
    let expr = rtl_lang::parse_expr("mem.3.4,#01,count.1", rtl_lang::Span::default()).unwrap();
    let design = Design::from_source(classic::FIG3_1).unwrap();
    let mut sim = Interpreter::new(&design);
    let text = run_captured(&mut sim, 4).unwrap();
    assert!(text.contains("cat= 27"), "{text}");
    // The width bookkeeping matches the figure: 2 + 2 + 1 = 5 bits.
    let widths: u32 = expr
        .parts
        .iter()
        .map(|p| u32::from(p.width().expect("all parts sized")))
        .sum();
    assert_eq!(widths, 5);
}

/// Figure 4.1 — ALU code generation, generic vs. inlined.
#[test]
fn figure_4_1_alu_codegen() {
    let design = Design::from_source(classic::FIG4_1).unwrap();
    let pascal = emit_pascal(&design, &EmitOptions::default());
    // The generic ALU calls dologic with its function expression...
    assert!(
        pascal.contains("ljbalu := dologic(ljbcompute, templeft, 3048);"),
        "{pascal}"
    );
    // ...while the constant-function ALU is inlined to an addition.
    assert!(pascal.contains("ljbadd := templeft + 3048;"), "{pascal}");

    let rust = emit_rust(&design, &EmitOptions::default());
    assert!(
        rust.contains("v_alu = dologic(v_compute, t_left, 3048i64);"),
        "{rust}"
    );
    assert!(
        rust.contains("v_add = t_left.wrapping_add(3048i64);"),
        "{rust}"
    );

    // And both ALUs compute the same value at runtime.
    let mut session = Session::over(Interpreter::new(&design)).capture().build();
    assert!(session.run(Until::Spec).completed());
    let text = session.output_text();
    assert!(text.contains("alu= 3148 add= 3148"), "{text}");
}

/// Figure 4.2 — selector code generation: the case statement.
#[test]
fn figure_4_2_selector_codegen() {
    let design = Design::from_source(classic::FIG4_2).unwrap();
    let pascal = emit_pascal(&design, &EmitOptions::default());
    assert!(pascal.contains("case ljbindex of"), "{pascal}");
    for (i, v) in ["ljbvalue0", "ljbvalue1", "ljbvalue2", "ljbvalue3"]
        .iter()
        .enumerate()
    {
        assert!(
            pascal.contains(&format!("{i}: ljbselector := {v}")),
            "case {i} missing:\n{pascal}"
        );
    }
}

/// Figure 4.3 — memory code generation: initialization, the four-way
/// operation case, and the trace-read/trace-write conditions.
#[test]
fn figure_4_3_memory_codegen() {
    let design = Design::from_source(classic::FIG4_3).unwrap();
    let pascal = emit_pascal(&design, &EmitOptions::default());
    for snippet in [
        "ljbmemory[0] := 12;",
        "ljbmemory[1] := 34;",
        "ljbmemory[2] := 56;",
        "ljbmemory[3] := 78;",
        "case land(opnmemory, 3) of",
        "tempmemory := ljbmemory[adrmemory]",
        "ljbmemory[adrmemory] := tempmemory;",
        "tempmemory := sinput(adrmemory)",
        "soutput(adrmemory, tempmemory);",
        "if land(opnmemory, 5) = 5 then",
        "writeln(' Write to memory at ', adrmemory:1, ': ', tempmemory:1);",
        "if land(opnmemory, 9) = 8 then",
        "writeln(' Read from memory at ', adrmemory:1, ': ', tempmemory:1);",
    ] {
        assert!(
            pascal.contains(snippet),
            "missing {snippet:?} in:\n{pascal}"
        );
    }
}

/// Figure 5.1's structural claims, machine-speed independent: the compiled
/// program does strictly less per-cycle work than the interpretation
/// tables, and both produce the same results (timings live in rtl-bench).
#[test]
fn figure_5_1_structure() {
    let w = asim2::machines::stack::sieve_workload(10);
    let spec = asim2::machines::stack::rtl::spec(&w.program, Some(w.cycles));
    let design = Design::elaborate(&spec).unwrap();

    // The optimizer removes every dologic dispatch except the datapath's
    // genuinely dynamic ALU.
    let full = stats(&lower(&design, OptOptions::full()));
    let none = stats(&lower(&design, OptOptions::none()));
    assert!(full.nodes < none.nodes, "{full:?} vs {none:?}");
    assert!(full.generic_alus < none.generic_alus);
    assert_eq!(
        full.generic_alus, 1,
        "only the microcoded ALU stays dynamic"
    );

    // And the whole point: identical output.
    let mut interp = Interpreter::new(&design);
    let mut vm = Vm::new(&design);
    let a = run_captured(&mut interp, w.cycles as u64 + 1).unwrap();
    let b = run_captured(&mut vm, w.cycles as u64 + 1).unwrap();
    assert_eq!(a, b);
}

/// The Appendix E fidelity check: our Pascal backend reproduces the
/// structural landmarks of the published generated program.
#[test]
fn appendix_e_landmarks() {
    let w = asim2::machines::stack::sieve_workload(5);
    let spec = asim2::machines::stack::rtl::spec(&w.program, Some(w.cycles));
    let design = Design::elaborate(&spec).unwrap();
    let pascal = emit_pascal(&design, &EmitOptions::default());
    for landmark in [
        "program simulator (input, output);",
        "function land (a, b: integer): integer;",
        "function dologic (funct, left, right: integer): integer;",
        "function sinput (address: integer): integer;",
        "procedure soutput (address, data: integer);",
        "procedure initvalues;",
        "while cyclecount <= cycles do begin",
        "cyclecount := cyclecount + 1;",
        // The state machine's control ROM compiles to a case over the
        // micro-address, like Appendix E's `case land(tempstate, 63) of`.
        "case land(ljbcurop, 15) + land(tempstate, 7) * 16 of",
    ] {
        assert!(pascal.contains(landmark), "missing {landmark:?}");
    }
}
