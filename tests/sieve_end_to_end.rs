//! The Figure 5.1 workload, end to end, across every execution level:
//! ISS oracle → RTL interpreter → compiled VM → generated Rust binary.
//! All four must print exactly the same primes.

use asim2::machines::stack;
use asim2::prelude::*;

fn rtl_output<E: Engine>(engine: &mut E) -> String {
    let mut session = Session::over(engine).capture().build();
    session
        .run(Until::Spec)
        .into_result()
        .unwrap_or_else(|e| panic!("simulation failed: {e}"));
    session.output_text()
}

#[test]
fn all_levels_agree_on_the_primes() {
    let w = stack::sieve_workload(20);
    assert_eq!(
        w.primes,
        vec![3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41],
        "ISS primes"
    );

    let spec = stack::rtl::spec(&w.program, Some(w.cycles));
    let design = Design::elaborate(&spec).unwrap();

    // Trace off: only the memory-mapped output device prints.
    let mut interp =
        asim2::interp::Interpreter::with_options(&design, asim2::interp::InterpOptions::quiet());
    let interp_out = rtl_output(&mut interp);
    assert_eq!(interp_out, w.expected_output, "interpreter output");

    let mut vm = Vm::with_options(&design, OptOptions::full(), false);
    assert_eq!(rtl_output(&mut vm), w.expected_output, "VM output");

    let mut vm_naive = Vm::with_options(&design, OptOptions::none(), false);
    assert_eq!(
        rtl_output(&mut vm_naive),
        w.expected_output,
        "unoptimized VM output"
    );
}

#[test]
fn interp_and_vm_traces_are_identical_with_trace_on() {
    let w = stack::sieve_workload(5);
    let spec = stack::rtl::spec(&w.program, Some(w.cycles));
    let design = Design::elaborate(&spec).unwrap();
    let mut interp = Interpreter::new(&design);
    let mut vm = Vm::new(&design);
    let a = rtl_output(&mut interp);
    let b = rtl_output(&mut vm);
    assert_eq!(a, b);
    // The trace interleaves cycle lines and the primes.
    assert!(a.contains("Cycle   0\n"), "{a}");
    assert!(a.contains("\n3\n"), "{a}");
}

#[test]
fn generated_rust_binary_prints_the_same_primes() {
    if !asim2::compile::rustc_available() {
        eprintln!("skipping: rustc not on PATH");
        return;
    }
    let w = stack::sieve_workload(10);
    let spec = stack::rtl::spec(&w.program, Some(w.cycles));
    let design = Design::elaborate(&spec).unwrap();

    let options = EmitOptions {
        trace: false,
        ..EmitOptions::default()
    };
    let compiled = asim2::compile::build(&design, &options).unwrap_or_else(|e| panic!("{e}"));
    let (stdout, _) = compiled.run(b"").unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(stdout, w.expected_output, "binary output");
}

#[test]
fn other_workloads_cross_check() {
    use asim2::machines::stack::programs;
    let unsorted = vec![9, 2, 7, 2, 5, 0, 8];
    for (asm, expected) in [
        (programs::fibonacci(8), programs::fibonacci_expected(8)),
        (programs::gcd(36, 24), vec![programs::gcd_expected(36, 24)]),
        (programs::gcd(13, 7), vec![1]),
        (
            programs::bubble_sort(&unsorted),
            programs::bubble_sort_expected(&unsorted),
        ),
    ] {
        let program = stack::assemble(&asm).unwrap_or_else(|e| panic!("{e}"));
        let mut iss = stack::Iss::new(program.clone());
        assert_eq!(iss.run(5_000_000), stack::Stop::Halted);
        assert_eq!(iss.output_values(), expected);

        let spec = stack::rtl::spec(&program, Some(iss.predicted_cycles as i64));
        let design = Design::elaborate(&spec).unwrap();
        let mut vm = Vm::with_options(&design, OptOptions::full(), false);
        assert_eq!(rtl_output(&mut vm), iss.rendered_output());
    }
}

#[test]
fn sieve_scales_with_size() {
    for size in [1, 3, 40] {
        let w = stack::sieve_workload(size);
        let spec = stack::rtl::spec(&w.program, Some(w.cycles));
        let design = Design::elaborate(&spec).unwrap();
        let mut vm = Vm::with_options(&design, OptOptions::full(), false);
        assert_eq!(rtl_output(&mut vm), w.expected_output, "size {size}");
    }
}
