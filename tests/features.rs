//! Integration tests for the §1.4 statistics and §5.4 modularity features.

use asim2::prelude::*;
use rtl_lang::modules::{instantiate, splice, Instance};

#[test]
fn statistics_agree_across_engines_on_the_sieve() {
    let w = asim2::machines::stack::sieve_workload(10);
    let spec = asim2::machines::stack::rtl::spec(&w.program, Some(w.cycles));
    let design = Design::elaborate(&spec).unwrap();

    let mut interp = Interpreter::new(&design);
    run_captured(&mut interp, w.cycles as u64 + 1).unwrap();
    let mut vm = Vm::new(&design);
    run_captured(&mut vm, w.cycles as u64 + 1).unwrap();

    assert_eq!(interp.stats(), vm.stats(), "engines count identically");
    assert_eq!(interp.stats().cycles, w.cycles as u64 + 1);

    // Sanity against the machine's structure: the program ROM reads every
    // cycle; every memory operation happens once per memory per cycle.
    let prog = design.find("prog").unwrap();
    assert_eq!(interp.stats().reads[prog.index()], w.cycles as u64 + 1);
    let ram = design.find("ram").unwrap();
    let ram_ops = interp.stats().reads[ram.index()]
        + interp.stats().writes[ram.index()]
        + interp.stats().outputs[ram.index()];
    assert_eq!(
        ram_ops,
        w.cycles as u64 + 1,
        "one RAM port, one op per cycle"
    );
    // The primes went out through the RAM's output operation.
    assert_eq!(interp.stats().outputs[ram.index()], w.primes.len() as u64);

    // The report names every memory.
    let report = interp.stats().report(&design);
    for &m in design.memories() {
        assert!(report.contains(design.name(m)), "{report}");
    }
}

#[test]
fn module_instantiation_builds_working_hardware() {
    // A reusable 4-bit counter module with an external enable (`step` is
    // added each cycle, so binding it to 0 freezes the instance).
    let module = rtl_lang::parse(
        "# counter module\nvalue next .\nM value 0 next.0.3 1 1\nA next 4 value step .",
    )
    .unwrap();

    let mut host = rtl_lang::parse(
        "# two counters, one enabled\n= 6\ngo* stop* c0value* c1value* .\n\
         A go 2 1 0\nA stop 2 0 0 .",
    )
    .unwrap();
    splice(
        &mut host,
        instantiate(&module, &Instance::new("c0").bind("step", "go")).unwrap(),
    );
    splice(
        &mut host,
        instantiate(&module, &Instance::new("c1").bind("step", "stop")).unwrap(),
    );

    let design = Design::elaborate(&host).unwrap();
    let mut session = Session::over(Interpreter::new(&design)).capture().build();
    assert!(session.run(Until::Spec).completed());
    let text = session.output_text();
    let last = text.lines().last().unwrap();
    // After 6 cycles the enabled instance counted; the frozen one did not.
    assert!(last.contains("c0value= 6"), "{text}");
    assert!(last.contains("c1value= 0"), "{text}");

    // The flattened design still works on the VM and the codegen path.
    let mut session = Session::over(Vm::new(&design)).capture().build();
    assert!(session.run(Until::Spec).completed());
    assert_eq!(session.output_text(), text);
    let rust = emit_rust(&design, &EmitOptions::default());
    assert!(rust.contains("t_c0value"), "{rust}");
}

#[test]
fn nested_module_composition() {
    // A half-adder module, instantiated twice plus glue to form a full
    // adder — the classic modularity demo.
    let half = rtl_lang::parse("# half adder\nsum carry .\nA sum 10 ha1 ha2\nA carry 8 ha1 ha2 .")
        .unwrap();

    let mut host = rtl_lang::parse(
        "# full adder from two half adders\n= 7\na b cin s* cout* cnt nxt orc .\n\
         M cnt 0 nxt.0.2 1 1\nA nxt 4 cnt 1\n\
         A a 2 cnt.0 0\nA b 2 cnt.1 0\nA cin 2 cnt.2 0\n\
         A s 2 h2sum 0\nA orc 9 h1carry h2carry\nA cout 2 orc 0 .",
    )
    .unwrap();
    splice(
        &mut host,
        instantiate(
            &half,
            &Instance::new("h1").bind("ha1", "a").bind("ha2", "b"),
        )
        .unwrap(),
    );
    splice(
        &mut host,
        instantiate(
            &half,
            &Instance::new("h2").bind("ha1", "h1sum").bind("ha2", "cin"),
        )
        .unwrap(),
    );

    let design = Design::elaborate(&host).unwrap();
    let mut session = Session::over(Interpreter::new(&design)).capture().build();
    assert!(session.run(Until::Spec).completed());
    let text = session.output_text();

    // Exhaustive truth table: the counter sweeps all (a, b, cin).
    for (cycle, line) in text.lines().enumerate() {
        let a = cycle & 1;
        let b = (cycle >> 1) & 1;
        let cin = (cycle >> 2) & 1;
        let total = a + b + cin;
        assert!(
            line.contains(&format!("s= {}", total & 1)),
            "cycle {cycle}: {line}"
        );
        assert!(
            line.contains(&format!("cout= {}", total >> 1)),
            "cycle {cycle}: {line}"
        );
    }
}

#[test]
fn vcd_dump_records_value_changes() {
    let design =
        Design::from_source("# vcd\ncount next .\nM count 0 next.0.3 1 1\nA next 4 count 1 .")
            .unwrap();

    let dump_with = |use_vm: bool| -> String {
        let options = rtl_core::vcd::VcdOptions::default();
        let doc = if use_vm {
            let e = Vm::with_options(&design, OptOptions::full(), false);
            rtl_core::vcd::dump(e, 6, &options).unwrap()
        } else {
            let e = Interpreter::with_options(&design, asim2::interp::InterpOptions::quiet());
            rtl_core::vcd::dump(e, 6, &options).unwrap()
        };
        String::from_utf8(doc).unwrap()
    };

    let a = dump_with(false);
    let b = dump_with(true);
    assert_eq!(a, b, "engines produce identical waveforms");

    // Header declares both signals with inferred widths.
    assert!(a.contains("$var wire 4 ! count $end"), "{a}");
    assert!(a.contains("$var wire 5 \" next $end"), "{a}");
    // The counter changes every cycle; `next` leads it by one.
    assert!(a.contains("#0\n"), "{a}");
    assert!(a.contains("b00001 \""), "next = 1 during cycle 0: {a}");
    assert!(a.contains("b0001 !"), "count = 1 at the edge: {a}");
    // Timestamps are monotone.
    let stamps: Vec<u64> = a
        .lines()
        .filter_map(|l| l.strip_prefix('#'))
        .map(|n| n.parse().unwrap())
        .collect();
    assert!(stamps.windows(2).all(|w| w[0] < w[1]), "{stamps:?}");
}

#[test]
fn vcd_signal_filter() {
    let design =
        Design::from_source("# vcd\ncount next .\nM count 0 next 1 1\nA next 4 count 1 .").unwrap();
    let e = Vm::with_options(&design, OptOptions::full(), false);
    let doc = rtl_core::vcd::dump(
        e,
        3,
        &rtl_core::vcd::VcdOptions {
            signals: vec!["count".into()],
        },
    )
    .unwrap();
    let text = String::from_utf8(doc).unwrap();
    assert!(text.contains(" count $end"), "{text}");
    assert!(!text.contains(" next $end"), "{text}");
}
