//! Properties of the observation/comparator layer: the first divergent
//! cycle a lockstep run reports is an *invariant* of the harness
//! configuration — comparison stride and comparator choice may change
//! cost, never the verdict's position.

use asim2::cosim::{
    default_registry, generate_scenario, run_scenario_names, CosimOptions, CosimOutcome,
    FaultyVmFactory, GenOptions,
};
use proptest::prelude::*;
use rtl_core::observe::CompareMode;
use rtl_core::EngineRegistry;
use rtl_machines::Scenario;

fn fault_registry(trigger: u64) -> EngineRegistry {
    let mut registry = default_registry();
    registry.register(Box::new(FaultyVmFactory::from_cycle(trigger)));
    registry
}

fn first_divergent_cycle(
    registry: &EngineRegistry,
    scenario: &Scenario,
    stride: u64,
    compare: Vec<CompareMode>,
) -> i64 {
    let options = CosimOptions {
        compare_every: stride,
        compare,
        ..CosimOptions::default()
    };
    let lanes = vec!["interp".to_string(), "vm-fault".to_string()];
    match run_scenario_names(registry, &lanes, scenario, &options).expect("lanes build") {
        CosimOutcome::Divergence(report) => report.cycle,
        other => panic!("the fault lane must diverge, got {other:?}"),
    }
}

proptest! {
    /// The satellite property: across comparison strides {1, 7, 64} and
    /// comparator sets (trace vs vcd vs the composite), a vm-fault lane
    /// triggered at any cycle inside the horizon is pinned to the *same*
    /// first divergent cycle — the stride bisects back to it, and every
    /// lens sees the same corruption onset.
    #[test]
    fn first_divergent_cycle_is_stride_and_lens_invariant(
        seed in 0u64..8,
        trigger in 1u64..40,
    ) {
        let scenario = generate_scenario(seed, &GenOptions {
            size: 6,
            cycles: 48,
            ..GenOptions::default()
        });
        let registry = fault_registry(trigger);
        let mut observed = Vec::new();
        for stride in [1u64, 7, 64] {
            for compare in [
                vec![CompareMode::Trace],
                vec![CompareMode::Vcd],
                vec![CompareMode::Digest],
                vec![CompareMode::All],
            ] {
                let label = format!("stride {stride}, {compare:?}");
                let cycle = first_divergent_cycle(&registry, &scenario, stride, compare);
                observed.push((label, cycle));
            }
        }
        let expected = i64::try_from(trigger).unwrap();
        for (label, cycle) in &observed {
            prop_assert_eq!(
                *cycle, expected,
                "seed {}: {} reported cycle {}", seed, label, cycle
            );
        }
    }

    /// Healthy lanes stay in agreement under every single-lens
    /// configuration, at every stride — no comparator produces false
    /// positives on real engines.
    #[test]
    fn no_lens_false_positives_on_healthy_lanes(
        seed in 0u64..12,
        stride in 1u64..32,
    ) {
        let scenario = generate_scenario(seed, &GenOptions {
            size: 8,
            cycles: 32,
            ..GenOptions::default()
        });
        let registry = default_registry();
        let lanes = vec!["interp".to_string(), "vm".to_string()];
        for mode in CompareMode::ALL {
            let options = CosimOptions {
                compare_every: stride,
                compare: vec![mode],
                ..CosimOptions::default()
            };
            let outcome = run_scenario_names(&registry, &lanes, &scenario, &options).unwrap();
            prop_assert!(outcome.agreed(), "seed {}: {} diverged: {:?}", seed, mode, outcome);
        }
    }
}
