//! Property-based tests (S4 in `DESIGN.md`): parser round-trips, word
//! algebra, concatenation laws, and random-design engine agreement.

use asim2::prelude::*;
use proptest::prelude::*;
use rtl_core::{land, AluFn, WORD_MASK};
use rtl_lang::{parse_expr, Span};

proptest! {
    /// `parse ∘ pretty` is the identity on pretty-printed text.
    #[test]
    fn spec_pretty_parse_round_trip(seed in 0u64..500, size in 1usize..40) {
        let spec = asim2::machines::synth::random_spec(seed, size);
        let text = pretty(&spec);
        let spec2 = parse(&text).expect("pretty output parses");
        prop_assert_eq!(pretty(&spec2), text);
    }

    /// Engine agreement on arbitrary valid designs — the central safety
    /// property of the compiler.
    #[test]
    fn engines_agree_on_random_designs(seed in 500u64..600, size in 1usize..30) {
        let spec = asim2::machines::synth::random_spec(seed, size);
        let design = Design::elaborate(&spec).expect("random specs are valid");
        let mut interp = Interpreter::new(&design);
        let expected = run_captured(&mut interp, 20).expect("no runtime errors");
        let mut vm = Vm::new(&design);
        let got = run_captured(&mut vm, 20).expect("no runtime errors");
        prop_assert_eq!(got, expected);
    }

    /// `land` is 32-bit two's-complement AND: matches the reference
    /// formula for every i64 pair.
    #[test]
    fn land_matches_reference(a in any::<i64>(), b in any::<i64>()) {
        let expected = ((a as i32) & (b as i32)) as i64;
        prop_assert_eq!(land(a, b), expected);
        // Commutative and idempotent.
        prop_assert_eq!(land(a, b), land(b, a));
        prop_assert_eq!(land(a, a), a as i32 as i64);
    }

    /// ALU bit functions agree with native operators on word-range values.
    #[test]
    fn alu_bit_functions(a in 0i64..=WORD_MASK, b in 0i64..=WORD_MASK) {
        prop_assert_eq!(AluFn::And.apply(a, b), a & b);
        prop_assert_eq!(AluFn::Or.apply(a, b), a | b);
        prop_assert_eq!(AluFn::Xor.apply(a, b), a ^ b);
        prop_assert_eq!(AluFn::Not.apply(a, 0), WORD_MASK - a);
        prop_assert_eq!(AluFn::Eq.apply(a, b), i64::from(a == b));
        prop_assert_eq!(AluFn::Lt.apply(a, b), i64::from(a < b));
    }

    /// Add/Sub are inverses; Shl is multiplication by a power of two
    /// modulo 2^31 (for non-zero distances, per the dologic quirk).
    #[test]
    fn alu_arithmetic(a in 0i64..=WORD_MASK, n in 1i64..31) {
        prop_assert_eq!(AluFn::Sub.apply(AluFn::Add.apply(a, 7), 7), a);
        let shifted = AluFn::Shl.apply(a, n);
        prop_assert_eq!(shifted, land(a.wrapping_shl(n as u32), WORD_MASK));
    }

    /// Concatenation law: evaluating `x.f.t` extracts exactly the field.
    #[test]
    fn subfield_extraction(value in 0i64..=WORD_MASK, from in 0u8..16, width in 1u8..8) {
        let to = from + width - 1;
        let text = format!("x.{from}.{to}");
        let expr = parse_expr(&text, Span::default()).unwrap();
        let names = {
            let d = Design::from_source("# p\nx .\nA x 0 0 0 .").unwrap();
            let mut m = std::collections::HashMap::new();
            m.insert("x".to_string(), d.find("x").unwrap());
            m
        };
        let r = rtl_core::resolve::resolve_expr(&expr, &names, "prop").unwrap();
        let expected = (value >> from) & ((1 << width) - 1);
        prop_assert_eq!(r.eval(&[value]), expected);
    }

    /// Concatenating two fields is shift-or.
    #[test]
    fn concatenation_is_shift_or(hi in 0i64..16, lo in 0i64..16) {
        let text = format!("{hi}.4,{lo}.4");
        let expr = parse_expr(&text, Span::default()).unwrap();
        let r = rtl_core::resolve::resolve_expr(
            &expr,
            &std::collections::HashMap::new(),
            "prop",
        ).unwrap();
        prop_assert_eq!(r.as_constant(), Some((hi << 4) | lo));
    }

    /// The number grammar accepts what it prints.
    #[test]
    fn number_round_trip(v in 0i64..=WORD_MASK) {
        prop_assert_eq!(rtl_lang::parse_number(&v.to_string()), Ok(v));
        prop_assert_eq!(rtl_lang::parse_number(&format!("${v:X}")), Ok(v));
        prop_assert_eq!(rtl_lang::parse_number(&format!("%{v:b}")), Ok(v));
    }

    /// The stack-machine assembler round-trips through its listing.
    #[test]
    fn assembler_listing_round_trip(words in proptest::collection::vec(0i64..(1 << 17), 1..40)) {
        use asim2::machines::stack::{asm, Instr};
        let program: Vec<Instr> = words.iter().map(|&w| Instr::decode(w)).collect();
        // Render as assembly and re-assemble. Operand-less listing lines
        // reassemble to operand 0, so compare re-encoded mnemonics.
        let listing: String = program
            .iter()
            .map(|i| format!("{i}\n"))
            .collect();
        let again = asm::assemble(&listing).expect("listing reassembles");
        let norm: Vec<Instr> = program
            .iter()
            .map(|i| if i.op.takes_operand() { *i } else { Instr::new(i.op, 0) })
            .collect();
        prop_assert_eq!(again, norm);
    }
}

/// Dependency-order property: every combinational component appears after
/// everything it reads (deterministic, so plain test over many seeds).
#[test]
fn topological_order_is_valid_for_many_seeds() {
    for seed in 0..40 {
        let spec = asim2::machines::synth::random_spec(seed, 30);
        let design = Design::elaborate(&spec).unwrap();
        let position: std::collections::HashMap<usize, usize> = design
            .comb_order()
            .iter()
            .enumerate()
            .map(|(pos, id)| (id.index(), pos))
            .collect();
        for &id in design.comb_order() {
            let comp = design.comp(id);
            for expr in comp.kind.expressions() {
                for dep in expr.comps() {
                    if let Some(&dep_pos) = position.get(&dep.index()) {
                        assert!(
                            dep_pos < position[&id.index()],
                            "seed {seed}: {} evaluated before its dependency {}",
                            design.name(id),
                            design.name(dep)
                        );
                    }
                }
            }
        }
    }
}
