//! Failure injection (S5 in `DESIGN.md`): every diagnostic class the
//! thesis documents must fire, with its message.

use asim2::core::{ElabError, LoadError, SimError};
use asim2::lang::ParseErrorKind;
use asim2::prelude::*;

fn parse_err(src: &str) -> ParseErrorKind {
    match rtl_lang::parse(src) {
        Err(e) => e.kind,
        Ok(_) => panic!("expected parse error for {src:?}"),
    }
}

fn elab_err(src: &str) -> ElabError {
    match Design::from_source(src) {
        Err(LoadError::Elab(e)) => e,
        other => panic!("expected elaboration error, got {other:?}"),
    }
}

fn run_err(src: &str, cycles: u64) -> (SimError, SimError) {
    let design = Design::from_source(src).unwrap();
    let mut interp = Interpreter::new(&design);
    let e1 = run_captured(&mut interp, cycles).unwrap_err().1;
    let mut vm = Vm::new(&design);
    let e2 = run_captured(&mut vm, cycles).unwrap_err().1;
    assert_eq!(e1, e2, "engines report the same runtime error");
    (e1, e2)
}

#[test]
fn comment_required() {
    assert_eq!(parse_err("A x 1 2 3 ."), ParseErrorKind::MissingComment);
}

#[test]
fn malformed_numbers() {
    assert!(matches!(
        parse_err("# m\nx .\nM x 0 0 0 12a ."),
        ParseErrorKind::MalformedNumber(_)
    ));
    assert!(matches!(
        parse_err("# m\n= 99999999999\nx .\n."),
        ParseErrorKind::NumberTooLarge(_)
    ));
}

#[test]
fn undefined_macro() {
    assert_eq!(
        parse_err("# m\nx .\nA x ~ghost 0 0 ."),
        ParseErrorKind::UndefinedMacro("ghost".into())
    );
}

#[test]
fn component_expected() {
    let e = parse_err("# m\nx .\nQ x 1 2 3 .");
    assert_eq!(e, ParseErrorKind::ExpectedComponent("Q".into()));
}

#[test]
fn component_not_found_names_the_referrer() {
    match elab_err("# m\nx .\nA x 4 ghost 1 .") {
        ElabError::ComponentNotFound { name, referrer, .. } => {
            assert_eq!(name, "ghost");
            assert_eq!(referrer, "x");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn circular_dependency_lists_the_cycle() {
    let e = elab_err("# m\na b c .\nA a 4 b 1\nA b 4 c 1\nA c 4 a 1 .");
    match e {
        ElabError::CircularDependency { members } => {
            assert_eq!(members, ["a", "b", "c"]);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn too_many_bits() {
    let e = elab_err("# m\na b .\nA a 4 b,b 1\nA b 2 1 0 .");
    assert!(matches!(e, ElabError::TooManyBits { .. }), "{e:?}");
}

#[test]
fn selector_out_of_range_at_runtime() {
    let (e, _) = run_err("# m\nc s n .\nM c 0 n 1 1\nA n 4 c 1\nS s c 10 20 30 .", 10);
    match e {
        SimError::SelectorOutOfRange {
            component,
            index,
            cases,
            cycle,
        } => {
            assert_eq!(component, "s");
            assert_eq!(index, 3);
            assert_eq!(cases, 3);
            assert_eq!(cycle, 3);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn negative_selector_index_is_out_of_range() {
    let (e, _) = run_err(
        "# m\ns neg m .\nA neg 5 0 m\nS s neg 10 20\nM m 0 0 0 -1 1 .",
        3,
    );
    assert!(
        matches!(e, SimError::SelectorOutOfRange { index: -1, .. }),
        "{e:?}"
    );
}

#[test]
fn memory_address_out_of_range_at_runtime() {
    let (e, _) = run_err("# m\nc m n .\nM c 0 n 1 1\nA n 4 c 1\nM m c 0 0 3 .", 10);
    assert!(
        matches!(
            e,
            SimError::AddressOutOfRange {
                address: 3,
                size: 3,
                ..
            }
        ),
        "{e:?}"
    );
}

#[test]
fn bad_alu_function_at_runtime() {
    // Dynamic function expression walks past 13.
    let (e, _) = run_err("# m\nc a n .\nM c 0 n 1 1\nA n 4 c 1\nA a c 1 2 .", 20);
    assert!(
        matches!(e, SimError::BadAluFunction { funct: 14, .. }),
        "{e:?}"
    );
}

#[test]
fn input_exhaustion_at_runtime() {
    let (e, _) = run_err("# m\ni .\nM i 1 0 2 1 .", 2);
    assert!(matches!(e, SimError::InputExhausted { cycle: 0 }), "{e:?}");
}

#[test]
fn checkdcl_warnings_are_not_errors() {
    let design = Design::from_source("# m\nghost x .\nA x 2 1 0\nA extra 2 1 0 .").unwrap();
    assert_eq!(design.warnings().len(), 2);
    let mut sim = Interpreter::new(&design);
    assert!(
        run_captured(&mut sim, 3).is_ok(),
        "warnings do not block simulation"
    );
}

#[test]
fn traced_undefined_is_rejected_up_front() {
    assert!(matches!(
        elab_err("# m\nghost* x .\nA x 2 1 0 ."),
        ElabError::TracedUndefined { .. }
    ));
}

#[test]
fn error_messages_match_the_original_wording() {
    let e = Design::from_source("# m\na b .\nA a 4 b 1\nA b 4 a 1 .").unwrap_err();
    assert_eq!(e.to_string(), "Error. Circular dependency with a and/or b.");

    let e = rtl_lang::parse("# m\nx .\nB x 1 2 3 .").unwrap_err();
    assert!(e
        .to_string()
        .starts_with("Error. Component expected. Got <B> instead."));

    let e = rtl_lang::parse("no comment").unwrap_err();
    assert!(e.to_string().starts_with("Error. Comment required."));
}
