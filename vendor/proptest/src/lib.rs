//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro, `prop_assert*`,
//! [`strategy::Strategy`] implementations for integer ranges, `any`,
//! `collection::vec`, and a small character-class subset of the string
//! regex strategies. There is **no shrinking** — a failing case reports
//! the drawn inputs and the case index instead; re-running is
//! deterministic, so the report is reproducible.
//!
//! Case count defaults to 64 per property and can be raised with the
//! `PROPTEST_CASES` environment variable, matching the real crate's knob.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing vectors whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Produces a strategy covering the full value range of `T`.
pub fn any<T: strategy::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The glob import every proptest test starts with.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic randomized tests.
///
/// ```
/// use proptest::prelude::*;
/// proptest! {
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
                for case in 0..runner.cases() {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), runner.rng());)*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "proptest case {case} failed: {e}\ninputs: {}",
                            [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing proptest case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing proptest case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)+), a, b
        );
    }};
}

/// Fails the enclosing proptest case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[cfg(test)]
mod tests {

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, w in -4i64..=4) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-4..=4).contains(&w));
        }

        #[test]
        fn early_return_ok_is_accepted(v in 0u8..10) {
            if v > 100 {
                return Ok(());
            }
            prop_assert!(v < 10);
        }

        #[test]
        fn vec_strategy_sizes(xs in crate::collection::vec(1u8..=6, 1..5)) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| (1..=6).contains(&x)));
        }
    }

    #[test]
    fn string_strategy_draws_from_class() {
        let mut runner = TestRunner::new("string_strategy");
        for _ in 0..200 {
            let s = "[abc0-2]{2,5}".sample(runner.rng());
            assert!(s.len() >= 2 && s.len() <= 5, "{s:?}");
            assert!(s.chars().all(|c| "abc012".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = TestRunner::new("det");
        let mut b = TestRunner::new("det");
        for _ in 0..16 {
            assert_eq!((0i64..1000).sample(a.rng()), (0i64..1000).sample(b.rng()));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_report() {
        proptest! {
            fn always_fails(v in 0u8..10) {
                prop_assert!(v > 200, "impossible");
            }
        }
        always_fails();
    }
}
