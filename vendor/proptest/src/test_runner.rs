//! The per-property runner: deterministic seeding and case counting.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default number of cases per property (raise with `PROPTEST_CASES`).
pub const DEFAULT_CASES: u32 = 64;

/// A proptest case failure, produced by the `prop_assert*` macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives one property: owns the RNG (seeded from the property name, so
/// every run of a given test draws the same inputs) and the case count.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
}

impl TestRunner {
    /// A runner for the named property.
    pub fn new(name: &str) -> Self {
        // FNV-1a over the property name: distinct properties get distinct
        // but stable streams.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
            cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The runner's RNG, handed to strategies.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        TestRunner::new("default")
    }
}
