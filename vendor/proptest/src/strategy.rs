//! Value-generation strategies: the sampling half of proptest, without
//! shrinking.

use rand::rngs::StdRng;
use rand::RngCore;

/// Something that can draw values of one type from an RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::SampleRange::sample(self.clone(), rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::SampleRange::sample(self.clone(), rng)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy behind [`any`](crate::any): full-range values.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`](crate::any) returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any { _marker: std::marker::PhantomData }
            }
        }
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A collection-length range (accepted anywhere real proptest takes
/// `Into<SizeRange>`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest length, inclusive.
    pub min: usize,
    /// Largest length, exclusive.
    pub max: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// The strategy returned by [`collection::vec`](crate::collection::vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        assert!(self.size.min < self.size.max, "empty size range");
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// String strategies from a character-class pattern: `&str` literals like
/// `"[0-9a-f]{1,8}"` act as strategies, covering the subset of the regex
/// syntax this workspace uses (one character class with an optional
/// `{min,max}` repetition; a bare class means exactly one character).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + (rng.next_u64() % (max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[(rng.next_u64() % chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{min,max}` into (alphabet, min, max). Returns `None` for
/// anything outside the supported subset.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((chars, min, max))
}

#[cfg(test)]
mod tests {
    use super::parse_class_pattern;

    #[test]
    fn class_patterns_parse() {
        let (chars, min, max) = parse_class_pattern("[0-9a-zA-Z$%^#+.,]{0,12}").unwrap();
        assert_eq!(min, 0);
        assert_eq!(max, 12);
        assert!(chars.contains(&'0') && chars.contains(&'z') && chars.contains(&'$'));
        assert_eq!(parse_class_pattern("[ab]").unwrap().0, vec!['a', 'b']);
        assert_eq!(parse_class_pattern("[a]{3}").unwrap().1, 3);
        assert!(parse_class_pattern("abc").is_none());
        assert!(parse_class_pattern("[z-a]").is_none());
    }
}
