//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the bench targets link
//! against this minimal harness instead: same macros and builder API,
//! but measurement is a fixed-iteration timed loop printing a one-line
//! summary per benchmark. The numbers are indicative, not statistical —
//! good enough for the relative comparisons (interpreter vs. VM slope,
//! ablation deltas) the ROADMAP figures track, and fast enough that bench
//! targets can run under `cargo test` as smoke coverage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measurement configuration and entry point, mirroring criterion's type.
#[derive(Debug)]
pub struct Criterion {
    iterations: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: bench targets double as smoke tests under
        // `cargo test`. CRITERION_ITERS raises the sample count.
        let iterations = std::env::var("CRITERION_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5);
        Criterion { iterations }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iterations: self.iterations,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, self.iterations, &mut f);
        self
    }
}

/// Throughput annotation: elements (or bytes) processed per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration (cycles, components, ...).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark name (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    iterations: u32,
    throughput: Option<Throughput>,
    _criterion: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample count hint; this harness caps it to keep test runs quick.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = self.iterations.min(n as u32).max(1);
        self
    }

    /// Accepted for API compatibility; this harness uses fixed iterations.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness uses fixed iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.throughput, self.iterations, &mut f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.throughput, self.iterations, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the payload.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    runs: u32,
}

impl Bencher {
    /// Times one execution of `f` and accumulates it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.total += start.elapsed();
        self.runs += 1;
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    iterations: u32,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher::default();
    for _ in 0..iterations {
        f(&mut b);
    }
    if b.runs == 0 {
        println!("{name:<44} (no measurements)");
        return;
    }
    let per_iter = b.total / b.runs;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter.as_nanos() > 0 => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  {per_sec:>14.0} elem/s")
        }
        Some(Throughput::Bytes(n)) if per_iter.as_nanos() > 0 => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  {per_sec:>14.0} B/s")
        }
        _ => String::new(),
    };
    println!("{name:<44} {per_iter:>12.3?}/iter{rate}");
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produces `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("sum");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1000));
        g.bench_function("naive", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sized", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn bencher_accumulates() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        b.iter(|| 2 + 2);
        assert_eq!(b.runs, 2);
    }
}
