//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the narrow slice of the rand 0.9 API it actually uses: a seedable,
//! deterministic generator ([`rngs::StdRng`], xoshiro256** seeded through
//! SplitMix64) and uniform range sampling via [`RngExt::random_range`].
//!
//! Determinism is part of the contract: the differential property tests
//! and the cosim fuzzer both identify failing cases by seed alone, so the
//! stream produced for a given seed must never change. Keep this module
//! bit-stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive integer range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Uniform draw from an integer range (`1..4`, `0..=13`, ...).
    ///
    /// The modulo reduction carries a bias below one part in 2^32 for the
    /// small ranges this workspace samples — irrelevant for test-case
    /// generation, and kept simple to stay bit-stable.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self) -> bool
    where
        Self: Sized,
    {
        self.next_u64() & 1 == 1
    }
}

impl<T: RngCore> RngExt for T {}

/// The rand 0.9 name for [`RngExt`]; either import works.
pub use RngExt as Rng;

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — deterministic, fast, and good
    /// enough statistically for generating test scenarios.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000i64),
                b.random_range(0..1_000_000i64)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..8).map(|_| a.random_range(0..1_000_000)).collect();
        let vb: Vec<i64> = (0..8).map(|_| b.random_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..9u8);
            assert!((3..9).contains(&v));
            let w = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let u = rng.random_range(0..=0usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn stream_is_pinned() {
        // Bit-stability guard: seeds identify fuzz cases across sessions,
        // so the stream for a fixed seed must never change.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| super::RngCore::next_u64(&mut rng)).collect();
        assert_eq!(
            first,
            [
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }
}
