//! Hardware construction (§5.3): extract the tiny computer's netlist,
//! pick catalog parts the way Appendix F's hand-made list does, and print
//! the wiring list and bill of materials.
//!
//! Run with: `cargo run --example hardware_netlist`

use asim2::hw::{self, Netlist};
use asim2::machines::tiny;
use asim2::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = tiny::divider_image(17, 5);
    let spec = tiny::rtl::spec(&image, Some(200));
    let design = Design::elaborate(&spec)?;

    let netlist = Netlist::extract(&design);
    println!(
        "tiny computer: {} components, {} nets",
        design.len(),
        netlist.nets.len()
    );

    let parts = hw::select(&design, &netlist);
    println!("\nbill of materials (Appendix F style):");
    for (name, chips) in hw::bill_of_materials(&parts) {
        println!("{chips:>4}  {name}");
    }

    println!("\nwiring list (first 15 nets):");
    for line in hw::report::wiring_list(&design, &netlist).lines().take(15) {
        println!("{line}");
    }

    let dot = hw::dot::to_dot(&design, &netlist);
    println!(
        "\nDOT block diagram: {} lines (pipe `asim netlist --format dot` into graphviz)",
        dot.lines().count()
    );
    Ok(())
}
