//! Quickstart: write a specification, simulate it three ways, and show
//! they agree.
//!
//! Run with: `cargo run --example quickstart`

use asim2::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A four-bit counter with a mirror register one cycle behind — the
    // smallest design that shows both primitive kinds and the one-cycle
    // memory delay.
    let source = "\
# quickstart: counter plus shadow register
= 8
count* shadow* next .
M count 0 next.0.3 1 1
A next 4 count 1
M shadow 0 count 1 1
.";

    let spec = parse(source)?;
    println!(
        "parsed `{}` with {} components",
        spec.title,
        spec.components.len()
    );
    let design = Design::elaborate(&spec)?;

    // 1. The ASIM-style interpreter, driven through a Session.
    let mut session = Session::over(Interpreter::new(&design)).capture().build();
    session.run(Until::Spec).into_result()?;
    let interp_text = session.output_text();
    println!("\ninterpreter trace:\n{interp_text}");

    // 2. The ASIM II compiled bytecode VM — same driving contract.
    let mut session = Session::over(Vm::new(&design)).capture().build();
    session.run(Until::Spec).into_result()?;
    let vm_text = session.output_text();
    assert_eq!(vm_text, interp_text, "engines agree byte for byte");
    println!(
        "compiled VM produced identical output ({} bytes)",
        vm_text.len()
    );

    // 3. Generated standalone Rust (what ASIM II did with Pascal).
    let generated = emit_rust(&design, &EmitOptions::default());
    println!(
        "generated a standalone simulator: {} lines of Rust (see `asim compile`)",
        generated.lines().count()
    );
    Ok(())
}
