//! The thesis's headline workload: the Sieve of Eratosthenes on the
//! micro-coded Itty Bitty Stack Machine (Appendix D), simulated at the
//! register transfer level.
//!
//! Run with: `cargo run --release --example sieve_stack_machine`

use asim2::machines::stack;
use asim2::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Assemble the sieve and predict its cycle count with the ISS.
    let workload = stack::sieve_workload(20);
    println!(
        "sieve program: {} instructions, {} RTL cycles predicted (paper ran 5545)",
        workload.program.len(),
        workload.cycles
    );

    // Build the RTL model — a state machine, a 128-word microcode ROM,
    // a generic ALU and a 4096-word stack RAM with memory-mapped output.
    let spec = stack::rtl::spec(&workload.program, Some(workload.cycles));
    let design = Design::elaborate(&spec)?;
    println!(
        "RTL model: {} components ({} memories)",
        design.len(),
        design.memories().len()
    );

    // Run on the compiled VM; the trace is off, so the only output is the
    // memory-mapped output device: the primes.
    let start = Instant::now();
    let mut session = Session::over(Vm::with_options(&design, OptOptions::full(), false))
        .capture()
        .build();
    session.run(Until::Spec).into_result()?;
    let elapsed = start.elapsed();

    let text = session.output_text();
    println!("\nprimes found by the hardware model:");
    print!("{text}");
    assert_eq!(
        text, workload.expected_output,
        "RTL output matches the ISS oracle"
    );
    println!(
        "\n{} cycles simulated in {elapsed:?} ({:.1} Mcycles/s)",
        workload.cycles + 1,
        (workload.cycles + 1) as f64 / elapsed.as_secs_f64() / 1e6,
    );
    Ok(())
}
