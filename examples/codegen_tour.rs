//! A tour of the ASIM II code generator: the Figure 4.1–4.3 artifacts
//! regenerated in both backends, plus the optimizer's statistics.
//!
//! Run with: `cargo run --example codegen_tour`

use asim2::compile::{lower, stats, OptOptions};
use asim2::machines::classic;
use asim2::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (figure, src) in [
        ("Figure 4.1 (ALU)", classic::FIG4_1),
        ("Figure 4.2 (selector)", classic::FIG4_2),
        ("Figure 4.3 (memory)", classic::FIG4_3),
    ] {
        let design = Design::from_source(src)?;
        println!("==== {figure} ====");
        println!("-- specification --\n{src}");

        let pascal = emit_pascal(&design, &EmitOptions::default());
        let interesting: Vec<&str> = pascal
            .lines()
            .skip_while(|l| !l.starts_with("begin"))
            .collect();
        println!("-- generated Pascal (main block) --");
        for line in &interesting {
            println!("{line}");
        }

        let full = stats(&lower(&design, OptOptions::full()));
        let none = stats(&lower(&design, OptOptions::none()));
        println!(
            "-- optimizer: {} IR nodes with optimization, {} without; \
             dologic calls {} -> {}\n",
            full.nodes, none.nodes, none.generic_alus, full.generic_alus
        );
    }

    // The full sieve machine as a codegen stress test.
    let w = asim2::machines::stack::sieve_workload(10);
    let spec = asim2::machines::stack::rtl::spec(&w.program, Some(w.cycles));
    let design = Design::elaborate(&spec)?;
    let rust = emit_rust(&design, &EmitOptions::default());
    let pascal = emit_pascal(&design, &EmitOptions::default());
    println!(
        "stack machine: {} lines of generated Rust, {} lines of generated Pascal",
        rust.lines().count(),
        pascal.lines().count()
    );
    Ok(())
}
