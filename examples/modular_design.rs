//! The §5.4 modularity feature: describe a module once, instantiate it
//! several times with compile-time expansion, and watch the composed
//! hardware run — here, a ripple counter bank with a comparator.
//!
//! Run with: `cargo run --example modular_design`

use asim2::prelude::*;
use rtl_lang::modules::{instantiate, splice, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One reusable module: a 4-bit counter that advances by `step`.
    let counter = parse(
        "# counter module\nvalue next .\n\
         M value 0 next.0.3 1 1\nA next 4 value step .",
    )?;

    // The host wires three instances at different rates and compares two.
    let mut host = parse(
        "# three counters at different rates\n= 10\n\
         one two three m0value* m1value* m2value* same* .\n\
         A one 2 1 0\nA two 2 2 0\nA three 2 3 0\n\
         A same 12 m0value m1value .",
    )?;
    for (prefix, step) in [("m0", "one"), ("m1", "two"), ("m2", "three")] {
        let comps = instantiate(&counter, &Instance::new(prefix).bind("step", step))?;
        splice(&mut host, comps);
    }
    println!(
        "expanded 1 module x 3 instances into {} flat components",
        host.components.len()
    );

    let design = Design::elaborate(&host)?;
    let mut session = Session::over(Interpreter::new(&design)).capture().build();
    session.run(Until::Spec).into_result()?;
    println!("\n{}", session.output_text());

    // And the same flattened design goes straight to hardware: the parts
    // list counts three sets of counter flip-flops.
    let netlist = asim2::hw::Netlist::extract(&design);
    let parts = asim2::hw::select(&design, &netlist);
    println!("bill of materials for the composed design:");
    for (name, chips) in asim2::hw::bill_of_materials(&parts) {
        println!("{chips:>4}  {name}");
    }
    Ok(())
}
