//! The Appendix F tiny computer: a 10-bit machine with five instructions,
//! dividing by repeated subtraction, traced register by register.
//!
//! Run with: `cargo run --example tiny_computer`

use asim2::machines::tiny;
use asim2::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (a, b) = (17, 5);
    let image = tiny::divider_image(a, b);

    // Instruction-level oracle.
    let mut iss = tiny::iss::TinyIss::new(image.clone());
    assert!(iss.run_until_spin(100_000));
    println!(
        "ISS: {a} / {b} = {} remainder {} in {} instructions",
        iss.mem[tiny::layout::Q as usize],
        iss.mem[tiny::layout::A as usize],
        iss.instructions
    );

    // RTL model with the Appendix F trace list (`state* pc* ac*`).
    let cycles = (iss.instructions + 8) * tiny::rtl::CYCLES_PER_INSTRUCTION;
    let spec = tiny::rtl::spec_with_trace(&image, Some(cycles as i64), &["state", "pc", "ac"]);
    let design = Design::elaborate(&spec)?;
    let mut sim = Interpreter::new(&design);
    let mut session = Session::over(&mut sim).capture().build();
    session.run(Until::Spec).into_result()?;
    let text = session.output_text();
    drop(session);

    println!("\nfirst three instructions, cycle by cycle:");
    for line in text.lines().take(12) {
        println!("{line}");
    }

    let mem = design.find("mem").expect("the tiny computer has a memory");
    let cells = sim.state().cells(mem);
    println!(
        "\nRTL: quotient cell = {}, remainder cell = {}",
        cells[tiny::layout::Q as usize],
        cells[tiny::layout::A as usize]
    );
    assert_eq!(cells[tiny::layout::Q as usize], a / b);
    assert_eq!(cells[tiny::layout::A as usize], a % b);
    println!("RTL memory image matches the ISS — same machine, two levels.");
    Ok(())
}
